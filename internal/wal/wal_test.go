package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// replayAll replays the segment set rooted at segment `first` in dir.
func replayAll(t *testing.T, dir string, first uint64) ([][]byte, ReplayInfo) {
	t.Helper()
	var got [][]byte
	info, err := Replay(dir, first, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, info
}

// segmentFiles lists the segment file names present in dir, sorted.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := ParseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncPerCommit, SyncGrouped, SyncAsync} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Create(dir, 1, Options{Policy: pol, GroupWindow: time.Millisecond, FlushInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			var want [][]byte
			for i := 0; i < 20; i++ {
				p := []byte(fmt.Sprintf("record-%d-%s", i, pol))
				want = append(want, p)
				if err := l.Append(p); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			got, info := replayAll(t, dir, 1)
			if info.Torn {
				t.Fatal("unexpected torn tail")
			}
			if info.Records != len(want) {
				t.Fatalf("records = %d, want %d", info.Records, len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
				}
			}
			st, _ := os.Stat(filepath.Join(dir, SegmentName(info.Last)))
			if st.Size() != info.ValidSize {
				t.Fatalf("ValidSize %d != file size %d", info.ValidSize, st.Size())
			}
			if info.Segments != 1 || info.First != 1 || info.Last != 1 {
				t.Fatalf("set = [%d..%d] (%d segments), want just segment 1", info.First, info.Last, info.Segments)
			}
			if info.LiveBytes != info.ValidSize {
				t.Fatalf("LiveBytes %d != ValidSize %d for a one-segment set", info.LiveBytes, info.ValidSize)
			}
		})
	}
}

func TestConcurrentAppends(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncGrouped, SyncAsync} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			// Tiny SegmentBytes so rotation happens under concurrent load.
			l, err := Create(dir, 1, Options{Policy: pol, GroupWindow: time.Millisecond, FlushInterval: time.Millisecond, SegmentBytes: 256})
			if err != nil {
				t.Fatal(err)
			}
			const goroutines, per = 8, 25
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
							t.Errorf("append: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got, info := replayAll(t, dir, 1)
			if len(got) != goroutines*per || info.Records != goroutines*per {
				t.Fatalf("replayed %d records, want %d", len(got), goroutines*per)
			}
			if info.Segments < 2 {
				t.Fatalf("expected rotation under load, got %d segment(s)", info.Segments)
			}
		})
	}
}

// Size-triggered rotation: appends spill into numbered segments, each
// below the threshold, and replay stitches the full record stream back
// in order.
func TestRotateBySize(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 30; i++ {
		p := []byte(fmt.Sprintf("payload-%02d-xxxxxxxxxxxxxxxx", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.ActiveIndex() < 3 {
		t.Fatalf("active index = %d, want several rotations", l.ActiveIndex())
	}
	var sum int64
	for _, name := range segmentFiles(t, dir) {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > 128+int64(FrameHeaderSize)+32 {
			t.Fatalf("segment %s is %d bytes, way past the threshold", name, st.Size())
		}
		sum += st.Size()
	}
	if lb := l.LiveBytes(); lb != sum {
		t.Fatalf("LiveBytes = %d, files sum to %d", lb, sum)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, dir, 1)
	if info.Records != len(want) || info.Torn {
		t.Fatalf("records=%d torn=%v, want %d clean", info.Records, info.Torn, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if int(info.Last-info.First)+1 != info.Segments {
		t.Fatalf("segment range [%d..%d] inconsistent with count %d", info.First, info.Last, info.Segments)
	}
}

// Explicit rotation seals the active segment and appends continue in
// the next one; OpenAt after replay appends to the newest segment.
func TestExplicitRotate(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	idx, err := l.Rotate()
	if err != nil || idx != 8 {
		t.Fatalf("rotate: index %d, err %v; want 8, nil", idx, err)
	}
	if err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, dir, 7)
	if info.Records != 2 || info.First != 7 || info.Last != 8 {
		t.Fatalf("info = %+v, want 2 records across [7..8]", info)
	}
	l2, err := OpenAt(dir, info, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.ActiveIndex() != 8 {
		t.Fatalf("reopened active index = %d, want 8", l2.ActiveIndex())
	}
	if err := l2.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, info = replayAll(t, dir, 7)
	if info.Records != 3 || string(got[2]) != "resumed" {
		t.Fatalf("after reopen: %d records, last %q", info.Records, got[len(got)-1])
	}
}

// Torn tail: a crash mid-append leaves a partial frame; replay must
// stop cleanly at the last whole record and OpenAt must truncate the
// tail so appending resumes at the cut.
func TestTornTailTruncatedFrame(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("commit-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SegmentName(1))
	whole, _ := os.Stat(path)
	// Chop into the middle of the last record's payload.
	if err := os.Truncate(path, whole.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, dir, 1)
	if !info.Torn {
		t.Fatal("expected torn tail")
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	// Reopen at the valid size and keep appending.
	l2, err := OpenAt(dir, info, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, info = replayAll(t, dir, 1)
	if info.Torn || len(got) != 5 {
		t.Fatalf("after reopen: torn=%v records=%d, want clean 5", info.Torn, len(got))
	}
	if string(got[4]) != "after-recovery" {
		t.Fatalf("last record = %q", got[4])
	}
}

// A flipped byte in the last record's payload must fail its CRC and be
// discarded as a torn tail.
func TestTornTailCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("commit-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SegmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, dir, 1)
	if !info.Torn || len(got) != 2 {
		t.Fatalf("torn=%v records=%d, want torn 2", info.Torn, len(got))
	}
}

// A torn frame in a NON-final segment followed by a record is
// corruption, not a tolerated tail: records after the cut would
// replay out of order.
func TestTornMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("first-segment-record")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("second-segment-record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, SegmentName(1))
	st, _ := os.Stat(first)
	if err := os.Truncate(first, st.Size()-2); err != nil {
		t.Fatal(err)
	}
	applied := 0
	if _, err := Replay(dir, 1, func([]byte) error { applied++; return nil }); !errors.Is(err, ErrTornSegment) {
		t.Fatalf("torn middle segment: %v, want ErrTornSegment", err)
	}
	// Segment 1's only record is the torn one, and segment 2's record
	// sits past the tear: neither may reach the callback.
	if applied != 0 {
		t.Fatalf("%d records applied, want 0 (nothing valid before the tear, nothing allowed after)", applied)
	}
}

// A torn non-final segment whose successors are record-free is the one
// mid-set shape a crash can produce (checkpoint died between creating
// its fresh segment and switching the manifest, old tail unsynced):
// replay cuts the stream at the tear and appending resumes there.
func TestTornSegmentBeforeEmptyTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear segment 1's last record, then create the empty successor a
	// dying checkpoint would have left.
	path := filepath.Join(dir, SegmentName(1))
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	l2, err := Create(dir, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := replayAll(t, dir, 1)
	if len(got) != 3 || !info.Torn || info.Last != 1 {
		t.Fatalf("records=%d torn=%v last=%d, want 3 torn records cut at segment 1", len(got), info.Torn, info.Last)
	}
	l3, err := OpenAt(dir, info, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l3.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	got, info = replayAll(t, dir, 1)
	if len(got) != 4 || string(got[3]) != "resumed" {
		t.Fatalf("after resume: %d records, last %q", len(got), got[len(got)-1])
	}
}

// A last segment shorter than its header is a crashed creation — no
// record can have landed in it (the header syncs before a segment
// accepts appends) — so recovery recreates it rather than failing
// forever.
func TestCrashedSegmentCreationRecovers(t *testing.T) {
	for _, short := range []int64{0, 3} {
		t.Run(fmt.Sprintf("%dbytes", short), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Create(dir, 1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append([]byte("kept")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// The crashed creation: segment 2's header only partially
			// (or not at all) on disk.
			if err := os.WriteFile(filepath.Join(dir, SegmentName(2)), []byte(Magic)[:short], 0o644); err != nil {
				t.Fatal(err)
			}
			got, info := replayAll(t, dir, 1)
			if len(got) != 1 || !info.Torn || info.Last != 2 || info.ValidSize != 0 {
				t.Fatalf("info=%+v records=%d, want 1 record, torn empty tail at segment 2", info, len(got))
			}
			l2, err := OpenAt(dir, info, Options{})
			if err != nil {
				t.Fatalf("reopen over crashed creation: %v", err)
			}
			if l2.ActiveIndex() != 2 {
				t.Fatalf("active = %d, want recreated segment 2", l2.ActiveIndex())
			}
			if err := l2.Append([]byte("after")); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			got, info = replayAll(t, dir, 1)
			if len(got) != 2 || info.Torn || string(got[1]) != "after" {
				t.Fatalf("after recreate: records=%d torn=%v", len(got), info.Torn)
			}
		})
	}
}

// A gap in the index sequence (or a missing first segment) aborts
// replay: the record stream would have a hole.
func TestMissingSegmentFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, SegmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 1, func([]byte) error { return nil }); !errors.Is(err, ErrMissingSegment) {
		t.Fatalf("gapped set: %v, want ErrMissingSegment", err)
	}
	if _, err := Replay(dir, 5, func([]byte) error { return nil }); !errors.Is(err, ErrMissingSegment) {
		t.Fatalf("missing first: %v, want ErrMissingSegment", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	// An empty lone segment is a crashed creation, not corruption: it
	// replays as a torn empty tail (recreated by OpenAt).
	if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Replay(dir, 1, func([]byte) error { return nil })
	if err != nil || !info.Torn || info.ValidSize != 0 {
		t.Fatalf("empty lone segment: info=%+v err=%v, want torn empty tail", info, err)
	}
	// A full-size header with the wrong magic or version is corruption.
	if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), []byte("NOPE\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 1, func([]byte) error { return nil }); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("bad magic: %v, want ErrBadHeader", err)
	}
	if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), []byte("XWAL\x7f"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 1, func([]byte) error { return nil }); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("bad version: %v, want ErrBadHeader", err)
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, idx := range []uint64{1, 42, 99999999, 100000001} {
		name := SegmentName(idx)
		got, ok := ParseSegmentName(name)
		if !ok || got != idx {
			t.Fatalf("ParseSegmentName(%q) = %d, %v", name, got, ok)
		}
	}
	// Only the canonical zero-padded form is a segment name: stray
	// near-misses (hand-made copies, foreign tools) must not enter the
	// contiguity check.
	for _, bad := range []string{"wal-.log", "wal-12x4.log", "snapshot-000001.xdyn", "wal-000001log", "MANIFEST",
		"wal-1.log", "wal-0000001.log", "wal-000000001.log", "wal-00000001.log.bak"} {
		if _, ok := ParseSegmentName(bad); ok {
			t.Fatalf("ParseSegmentName(%q) accepted", bad)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Create(t.TempDir(), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("rotate after close: %v, want ErrClosed", err)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append([]byte("a"))
	_ = l.Append([]byte("b"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = Replay(dir, 1, func(p []byte) error {
		if string(p) == "b" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("replay error = %v, want wrapped boom", err)
	}
}
