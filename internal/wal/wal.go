// Package wal is the repository's write-ahead log: an append-only,
// CRC-checked, length-prefixed record file that makes committed update
// batches durable before the next whole-repository snapshot. The
// package knows nothing about XML or update semantics — records are
// opaque byte payloads framed and checksummed here; the repository
// layer (internal/repo) defines what a payload means and internal/
// update defines how a batch of ops serialises into one.
//
// On-disk layout (the full specification, including the payload
// grammar the repository writes, lives in docs/DURABILITY.md and is
// kept honest by a golden-constants test):
//
//	header:  magic "XWAL" | version byte 1
//	record:  payload length (uint32 LE) | CRC-32/IEEE of payload (uint32 LE) | payload
//
// Records are appended, never rewritten. Replay streams records back
// in order and stops cleanly at the first frame that is truncated or
// fails its CRC — a torn tail from a crash mid-append loses only the
// commit that was being written, never an earlier one. OpenAt then
// truncates the tail so new appends extend the last valid record.
//
// Durability is configurable per log (SyncPolicy): fsync on every
// append, grouped fsyncs that let concurrent committers share one disk
// flush, or fully asynchronous fsyncs from a background flusher with a
// bounded loss window.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// On-disk format constants. docs/DURABILITY.md documents these values;
// TestDurabilityDocConstants fails if doc and code drift apart.
const (
	// Magic opens every WAL file.
	Magic = "XWAL"
	// Version is the current WAL format version byte.
	Version = 1
	// HeaderSize is the byte length of the file header (magic + version).
	HeaderSize = len(Magic) + 1
	// FrameHeaderSize is the byte length of a record frame header
	// (uint32 payload length + uint32 CRC, both little-endian).
	FrameHeaderSize = 8
	// MaxRecordSize bounds a single record payload; a frame claiming
	// more is treated as corruption.
	MaxRecordSize = 1 << 30
)

// DefaultFlushInterval is the async policy's background fsync period —
// the upper bound on the crash loss window.
const DefaultFlushInterval = 50 * time.Millisecond

// Errors reported by the log.
var (
	ErrClosed      = errors.New("wal: log is closed")
	ErrBadHeader   = errors.New("wal: bad file header")
	ErrTooLarge    = errors.New("wal: record exceeds MaxRecordSize")
	ErrShortHeader = errors.New("wal: file shorter than header")
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

// The fsync policies.
const (
	// SyncPerCommit fsyncs inside every Append: a returned Append is
	// durable. Highest latency, zero loss window.
	SyncPerCommit SyncPolicy = iota
	// SyncGrouped batches committers into shared fsyncs: Append blocks
	// until a flusher fsync covers it, so a returned Append is still
	// durable, but committers that arrive while an fsync is in flight
	// share the next one — N concurrent committers pay ~1 fsync between
	// them instead of N.
	SyncGrouped
	// SyncAsync returns from Append after the buffered write; a
	// background flusher fsyncs every FlushInterval. Lowest latency,
	// loss window bounded by the interval.
	SyncAsync
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncPerCommit:
		return "per-commit"
	case SyncGrouped:
		return "grouped"
	case SyncAsync:
		return "async"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a log.
type Options struct {
	// Policy is the fsync policy (default SyncPerCommit).
	Policy SyncPolicy
	// GroupWindow is an optional pacing pause the grouped flusher
	// inserts before each shared fsync, trading commit latency for
	// larger groups. Default none: group size emerges from committers
	// accumulating while the previous fsync is in flight.
	GroupWindow time.Duration
	// FlushInterval overrides DefaultFlushInterval for SyncAsync.
	FlushInterval time.Duration
}

func (o Options) flushInterval() time.Duration {
	if o.FlushInterval > 0 {
		return o.FlushInterval
	}
	return DefaultFlushInterval
}

// Log is an open write-ahead log positioned for appending. Safe for
// concurrent use; record order is the order Append calls complete.
type Log struct {
	opts Options

	mu     sync.Mutex
	f      *os.File
	size   int64
	closed bool
	// err is sticky: once an fsync fails the log refuses further
	// appends, because an unsynced tail may or may not survive a crash.
	err error

	// Grouped-sync state: committers wait on the current epoch, the
	// flusher resolves it after one shared fsync.
	epoch  *flushEpoch
	wake   chan struct{}
	stop   chan struct{}
	doneWG sync.WaitGroup
}

// flushEpoch is one group-commit generation: every Append that wrote
// before the flusher's fsync shares its result.
type flushEpoch struct {
	ready chan struct{}
	err   error
}

// Create creates (or truncates) a WAL file, writes the header and
// syncs it. The caller is responsible for making the file reachable
// (manifest, directory fsync) before relying on it.
func Create(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := append([]byte(Magic), Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return newLog(f, int64(HeaderSize), opts), nil
}

// OpenAt opens an existing WAL file for appending at size — the valid
// prefix length a Replay reported — truncating any torn tail beyond it.
func OpenAt(path string, opts Options, size int64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if size < int64(HeaderSize) {
		f.Close()
		return nil, ErrShortHeader
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return newLog(f, size, opts), nil
}

func newLog(f *os.File, size int64, opts Options) *Log {
	l := &Log{opts: opts, f: f, size: size}
	switch opts.Policy {
	case SyncGrouped:
		l.epoch = &flushEpoch{ready: make(chan struct{})}
		l.wake = make(chan struct{}, 1)
		l.stop = make(chan struct{})
		l.doneWG.Add(1)
		go l.groupFlusher()
	case SyncAsync:
		l.stop = make(chan struct{})
		l.doneWG.Add(1)
		go l.asyncFlusher()
	}
	return l
}

// Append frames payload (length + CRC) and appends it, honouring the
// log's sync policy: it returns once the record is durable under
// SyncPerCommit and SyncGrouped, or once it is written (not yet
// synced) under SyncAsync.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return ErrTooLarge
	}
	frame := make([]byte, FrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[FrameHeaderSize:], payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	l.size += int64(len(frame))

	switch l.opts.Policy {
	case SyncPerCommit:
		err := l.f.Sync()
		if err != nil {
			l.err = err
		}
		l.mu.Unlock()
		return err
	case SyncGrouped:
		e := l.epoch
		l.mu.Unlock()
		select {
		case l.wake <- struct{}{}:
		default:
		}
		<-e.ready
		return e.err
	default: // SyncAsync
		l.mu.Unlock()
		return nil
	}
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Size returns the current file size (header plus appended frames).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close stops the flusher, syncs outstanding writes and closes the
// file. Further appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	l.mu.Unlock()

	if l.stop != nil {
		close(l.stop)
		l.doneWG.Wait()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.err == nil {
		err = l.f.Sync()
	}
	// Resolve any committers still parked on the last grouped epoch.
	if l.epoch != nil {
		l.epoch.err = err
		close(l.epoch.ready)
		l.epoch = nil
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// groupFlusher services SyncGrouped: each wake-up swaps the epoch and
// resolves the old one with the result of a single shared fsync. The
// fsync runs outside the log mutex, so committers keep writing (and
// accumulating into the next epoch) while the disk flush is in flight
// — that in-flight window is where grouping comes from.
func (l *Log) groupFlusher() {
	defer l.doneWG.Done()
	for {
		select {
		case <-l.stop:
			return
		case <-l.wake:
		}
		if w := l.opts.GroupWindow; w > 0 {
			timer := time.NewTimer(w)
			select {
			case <-l.stop:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		old := l.epoch
		l.epoch = &flushEpoch{ready: make(chan struct{})}
		f := l.f
		l.mu.Unlock()
		err := f.Sync()
		if err != nil {
			l.mu.Lock()
			if l.err == nil {
				l.err = err
			}
			l.mu.Unlock()
		}
		old.err = err
		close(old.ready)
	}
}

// asyncFlusher services SyncAsync: periodic fsyncs bound the loss
// window; a sync failure is recorded and poisons later appends.
func (l *Log) asyncFlusher() {
	defer l.doneWG.Done()
	ticker := time.NewTicker(l.opts.flushInterval())
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return
			}
			f := l.f
			bad := l.err != nil
			l.mu.Unlock()
			if bad {
				continue
			}
			// Sync outside the mutex: appends proceed during the flush.
			if err := f.Sync(); err != nil {
				l.mu.Lock()
				if l.err == nil {
					l.err = err
				}
				l.mu.Unlock()
			}
		}
	}
}
