// Package wal is the repository's write-ahead log: an append-only,
// CRC-checked, length-prefixed record log that makes committed update
// batches durable before the next whole-repository snapshot. The
// package knows nothing about XML or update semantics — records are
// opaque byte payloads framed and checksummed here; the repository
// layer (internal/repo) defines what a payload means and internal/
// update defines how a batch of ops serialises into one.
//
// The log is **segmented**: it is a set of numbered files
// ("wal-%08d.log", indices monotonic and never reused) in one
// directory, of which exactly one — the highest-numbered — is open for
// appending. When the active segment would outgrow the size policy
// (Options.SegmentBytes) the log rotates: the active segment is
// fsynced, sealed and closed, and a fresh segment with the next index
// is created. Sealed segments are immutable, which is what lets a
// checkpoint retire any prefix of the set by deleting whole files and
// lets recovery cost stay proportional to the live suffix instead of
// the full history.
//
// On-disk layout of one segment (the full specification, including the
// payload grammar the repository writes, lives in docs/DURABILITY.md
// and is kept honest by a golden-constants test):
//
//	header:  magic "XWAL" | version byte 1
//	record:  payload length (uint32 LE) | CRC-32/IEEE of payload (uint32 LE) | payload
//
// Records are appended, never rewritten. Replay streams the segment
// set back in index order and stops cleanly at the first frame of the
// LAST segment that is truncated or fails its CRC — a torn tail from a
// crash mid-append loses only the commit that was being written, never
// an earlier one. Rotation seals segments with an fsync before their
// successor exists, so a well-formed crash can only tear the newest
// one; replay therefore accepts damage elsewhere only in the one
// shape a crash can legitimately produce (a tear followed by nothing
// but record-free segments — a checkpoint that died between creating
// its fresh segment and switching the manifest) and aborts as corrupt
// on any record past a tear or any gap in the index sequence. OpenAt
// then truncates the torn tail so new appends extend the last valid
// record, recreating the tail segment if its creation itself crashed.
//
// Durability is configurable per log (SyncPolicy): fsync on every
// append, grouped fsyncs that let concurrent committers share one disk
// flush, or fully asynchronous fsyncs from a background flusher with a
// bounded loss window.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// On-disk format constants. docs/DURABILITY.md documents these values;
// TestDurabilityDocConstants fails if doc and code drift apart.
const (
	// Magic opens every WAL segment file.
	Magic = "XWAL"
	// Version is the current WAL format version byte.
	Version = 1
	// HeaderSize is the byte length of the segment header (magic + version).
	HeaderSize = len(Magic) + 1
	// FrameHeaderSize is the byte length of a record frame header
	// (uint32 payload length + uint32 CRC, both little-endian).
	FrameHeaderSize = 8
	// MaxRecordSize bounds a single record payload; a frame claiming
	// more is treated as corruption.
	MaxRecordSize = 1 << 30
	// SegmentPattern is the fmt pattern of segment file names; the
	// decimal index is zero-padded to eight digits so lexical order is
	// numeric order for every index below 10^8.
	SegmentPattern = "wal-%08d.log"
	// DefaultSegmentBytes is the rotation threshold used when
	// Options.SegmentBytes is zero: an append that would push the
	// active segment past it rotates to a fresh segment first.
	DefaultSegmentBytes = 4 << 20
)

// DefaultFlushInterval is the async policy's background fsync period —
// the upper bound on the crash loss window.
const DefaultFlushInterval = 50 * time.Millisecond

// Errors reported by the log.
var (
	ErrClosed         = errors.New("wal: log is closed")
	ErrBadHeader      = errors.New("wal: bad segment header")
	ErrTooLarge       = errors.New("wal: record exceeds MaxRecordSize")
	ErrShortHeader    = errors.New("wal: segment shorter than header")
	ErrMissingSegment = errors.New("wal: segment set has a gap")
	ErrTornSegment    = errors.New("wal: torn record in a non-final segment")
)

// SegmentName returns the file name of segment index (SegmentPattern).
func SegmentName(index uint64) string { return fmt.Sprintf(SegmentPattern, index) }

// ParseSegmentName extracts the index from a segment file name,
// reporting whether name matches SegmentPattern exactly — the
// canonical zero-padded form only (8 digits, or more without a
// leading zero for indices ≥ 10^8). Rejecting near-misses like
// "wal-7.log" matters: a stray foreign file that parsed as an index
// would corrupt the contiguity check and wedge recovery.
func ParseSegmentName(name string) (uint64, bool) {
	digits, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	digits, ok = strings.CutSuffix(digits, ".log")
	if !ok || len(digits) < 8 || (len(digits) > 8 && digits[0] == '0') {
		return 0, false
	}
	idx, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	if SegmentName(idx) != name {
		return 0, false
	}
	return idx, true
}

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

// The fsync policies.
const (
	// SyncPerCommit fsyncs inside every Append: a returned Append is
	// durable. Highest latency, zero loss window.
	SyncPerCommit SyncPolicy = iota
	// SyncGrouped batches committers into shared fsyncs: Append blocks
	// until a flusher fsync covers it, so a returned Append is still
	// durable, but committers that arrive while an fsync is in flight
	// share the next one — N concurrent committers pay ~1 fsync between
	// them instead of N.
	SyncGrouped
	// SyncAsync returns from Append after the buffered write; a
	// background flusher fsyncs every FlushInterval. Lowest latency,
	// loss window bounded by the interval.
	SyncAsync
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncPerCommit:
		return "per-commit"
	case SyncGrouped:
		return "grouped"
	case SyncAsync:
		return "async"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a log.
type Options struct {
	// Policy is the fsync policy (default SyncPerCommit).
	Policy SyncPolicy
	// GroupWindow is an optional pacing pause the grouped flusher
	// inserts before each shared fsync, trading commit latency for
	// larger groups. Default none: group size emerges from committers
	// accumulating while the previous fsync is in flight.
	GroupWindow time.Duration
	// FlushInterval overrides DefaultFlushInterval for SyncAsync.
	FlushInterval time.Duration
	// SegmentBytes is the rotation threshold: an append that would grow
	// the active segment past it rotates to a fresh segment first (a
	// segment always holds at least one record, however large). Zero
	// means DefaultSegmentBytes; negative disables rotation.
	SegmentBytes int64
}

func (o Options) flushInterval() time.Duration {
	if o.FlushInterval > 0 {
		return o.FlushInterval
	}
	return DefaultFlushInterval
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes != 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Log is an open write-ahead log positioned for appending to the
// highest-numbered segment of its set. Safe for concurrent use; record
// order is the order Append calls complete.
type Log struct {
	opts Options
	dir  string

	mu     sync.Mutex
	f      *os.File // the active (highest-index) segment
	active uint64   // index of the active segment
	size   int64    // bytes in the active segment
	total  int64    // bytes across every live segment, sealed ones included
	closed bool
	// err is sticky: once an fsync fails the log refuses further
	// appends, because an unsynced tail may or may not survive a crash.
	err error

	// Grouped-sync state: committers wait on the current epoch, the
	// flusher resolves it after one shared fsync.
	epoch  *flushEpoch
	wake   chan struct{}
	stop   chan struct{}
	doneWG sync.WaitGroup
}

// flushEpoch is one group-commit generation: every Append that wrote
// before the flusher's fsync shares its result.
type flushEpoch struct {
	ready chan struct{}
	err   error
}

// Create creates (or truncates) segment index in dir as a new log's
// active segment, writing and syncing the header and fsyncing the
// directory so the file survives a crash. The caller is responsible
// for making the segment the manifest's first live segment before
// relying on it.
func Create(dir string, index uint64, opts Options) (*Log, error) {
	f, err := createSegment(dir, index)
	if err != nil {
		return nil, err
	}
	return newLog(dir, f, index, int64(HeaderSize), int64(HeaderSize), opts), nil
}

// OpenAt opens the segment set a Replay examined for appending: the
// last live segment is truncated to the valid prefix length the
// replay reported (discarding any torn tail) and positioned for
// appending. A ValidSize below HeaderSize marks a crashed segment
// creation (the header never fully reached disk; no record can have
// landed): the segment is recreated with a fresh synced header
// instead of opened.
func OpenAt(dir string, info ReplayInfo, opts Options) (*Log, error) {
	if info.ValidSize < int64(HeaderSize) {
		f, err := createSegment(dir, info.Last)
		if err != nil {
			return nil, err
		}
		return newLog(dir, f, info.Last, int64(HeaderSize), info.LiveBytes+int64(HeaderSize), opts), nil
	}
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(info.Last)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(info.ValidSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(info.ValidSize, 0); err != nil {
		f.Close()
		return nil, err
	}
	return newLog(dir, f, info.Last, info.ValidSize, info.LiveBytes, opts), nil
}

// createSegment creates (or truncates) one segment file with a synced
// header, then fsyncs the directory: a segment must be durably linked
// before records land in it, or a crash could silently drop a synced
// suffix of the record stream.
func createSegment(dir string, index uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(index)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := append([]byte(Magic), Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory, making completed file creations in it
// durable (local twin of internal/store.SyncDir; wal stays store-free).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func newLog(dir string, f *os.File, active uint64, size, total int64, opts Options) *Log {
	l := &Log{opts: opts, dir: dir, f: f, active: active, size: size, total: total}
	switch opts.Policy {
	case SyncGrouped:
		l.epoch = &flushEpoch{ready: make(chan struct{})}
		l.wake = make(chan struct{}, 1)
		l.stop = make(chan struct{})
		l.doneWG.Add(1)
		go l.groupFlusher()
	case SyncAsync:
		l.stop = make(chan struct{})
		l.doneWG.Add(1)
		go l.asyncFlusher()
	}
	return l
}

// Append frames payload (length + CRC) and appends it to the active
// segment — rotating to a fresh segment first if the size policy says
// this append would overgrow it — honouring the log's sync policy: it
// returns once the record is durable under SyncPerCommit and
// SyncGrouped, or once it is written (not yet synced) under SyncAsync.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return ErrTooLarge
	}
	frame := make([]byte, FrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[FrameHeaderSize:], payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if sb := l.opts.segmentBytes(); sb > 0 && l.size > int64(HeaderSize) && l.size+int64(len(frame)) > sb {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	l.size += int64(len(frame))
	l.total += int64(len(frame))

	switch l.opts.Policy {
	case SyncPerCommit:
		err := l.f.Sync()
		if err != nil {
			l.err = err
		}
		l.mu.Unlock()
		return err
	case SyncGrouped:
		e := l.epoch
		l.mu.Unlock()
		select {
		case l.wake <- struct{}{}:
		default:
		}
		<-e.ready
		return e.err
	default: // SyncAsync
		l.mu.Unlock()
		return nil
	}
}

// Rotate seals the active segment (fsync, close) and opens a fresh one
// with the next index, returning the new active index. Rotation is
// what bounds segment size — and, one level up, what lets a checkpoint
// retire history by whole files. Appends never split a record across
// segments; the size policy (Options.SegmentBytes) calls this
// automatically inside Append.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.active, nil
}

// rotateLocked seals the active segment and swaps in segment active+1.
// The old segment is fsynced BEFORE its successor exists, so replay's
// "only the last segment may be torn" rule is an invariant of the file
// set, not an assumption. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		// The unsynced tail may or may not survive: poison, exactly as
		// a failed policy fsync would.
		l.err = err
		return err
	}
	nf, err := createSegment(l.dir, l.active+1)
	if err != nil {
		// Nothing was lost and the active segment is intact: report the
		// error (the caller's append fails) without poisoning.
		return err
	}
	// Committers parked on the current grouped epoch wrote to the old
	// segment; the sync above made them durable, so resolve the epoch
	// now rather than leaving them to wait for a flush of the new file
	// that never covered them.
	if l.epoch != nil {
		old := l.epoch
		l.epoch = &flushEpoch{ready: make(chan struct{})}
		close(old.ready)
	}
	old := l.f
	l.f = nf
	l.active++
	l.size = int64(HeaderSize)
	l.total += int64(HeaderSize)
	_ = old.Close()
	return nil
}

// Sync forces an fsync of everything appended to the active segment
// (sealed segments were synced when they were sealed).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Size returns the active segment's current size (header plus frames).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// LiveBytes returns the total bytes across every live segment — sealed
// ones plus the active one. It is the recovery-cost signal size-
// triggered checkpoints watch.
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// ActiveIndex returns the index of the segment currently open for
// appending (the highest index of the set).
func (l *Log) ActiveIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// Close stops the flusher, syncs outstanding writes and closes the
// active segment. Further appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	l.mu.Unlock()

	if l.stop != nil {
		close(l.stop)
		l.doneWG.Wait()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.err == nil {
		err = l.f.Sync()
	}
	// Resolve any committers still parked on the last grouped epoch.
	if l.epoch != nil {
		l.epoch.err = err
		close(l.epoch.ready)
		l.epoch = nil
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// groupFlusher services SyncGrouped: each wake-up swaps the epoch and
// resolves the old one with the result of a single shared fsync. The
// fsync runs outside the log mutex, so committers keep writing (and
// accumulating into the next epoch) while the disk flush is in flight
// — that in-flight window is where grouping comes from.
func (l *Log) groupFlusher() {
	defer l.doneWG.Done()
	for {
		select {
		case <-l.stop:
			return
		case <-l.wake:
		}
		if w := l.opts.GroupWindow; w > 0 {
			timer := time.NewTimer(w)
			select {
			case <-l.stop:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		old := l.epoch
		l.epoch = &flushEpoch{ready: make(chan struct{})}
		f := l.f
		l.mu.Unlock()
		err := f.Sync()
		if err != nil {
			l.mu.Lock()
			if l.f != f {
				// The segment was rotated away after the flusher captured
				// it; rotation synced it before sealing, so every byte the
				// epoch covers is durable and the failure (typically
				// "file already closed") is moot.
				err = nil
			} else if l.err == nil {
				l.err = err
			}
			l.mu.Unlock()
		}
		old.err = err
		close(old.ready)
	}
}

// asyncFlusher services SyncAsync: periodic fsyncs bound the loss
// window; a sync failure is recorded and poisons later appends.
func (l *Log) asyncFlusher() {
	defer l.doneWG.Done()
	ticker := time.NewTicker(l.opts.flushInterval())
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return
			}
			f := l.f
			bad := l.err != nil
			l.mu.Unlock()
			if bad {
				continue
			}
			// Sync outside the mutex: appends proceed during the flush.
			if err := f.Sync(); err != nil {
				l.mu.Lock()
				// As in groupFlusher: a rotated-away segment was synced
				// at sealing, so only the still-active file can poison.
				if l.f == f && l.err == nil {
					l.err = err
				}
				l.mu.Unlock()
			}
		}
	}
}
