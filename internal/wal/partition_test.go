package wal

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// buildPartitionLog writes records "key:seq" for the given schedule
// and returns the directory. A record starting with '!' is meant to be
// routed as a barrier.
func buildPartitionLog(t *testing.T, records []string) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Create(dir, 1, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// routeByPrefix routes "key:…" records by key and "!…" records as
// barriers.
func routeByPrefix(payload []byte) (Dispatch, error) {
	s := string(payload)
	if strings.HasPrefix(s, "!") {
		return Dispatch{Barrier: true}, nil
	}
	key, _, ok := strings.Cut(s, ":")
	if !ok {
		return Dispatch{}, fmt.Errorf("malformed record %q", s)
	}
	return Dispatch{Key: key}, nil
}

// Per-key order is preserved across lanes, every record is applied
// exactly once, and the payload handed to apply is not clobbered by
// the replay buffer reuse.
func TestReplayPartitionedPreservesPerKeyOrder(t *testing.T) {
	const keys, perKey = 7, 50
	var records []string
	for i := 0; i < perKey; i++ {
		for k := 0; k < keys; k++ {
			records = append(records, fmt.Sprintf("k%d:%d", k, i))
		}
	}
	dir := buildPartitionLog(t, records)

	var mu sync.Mutex
	got := map[string][]string{}
	info, err := ReplayPartitioned(dir, 1, 4, routeByPrefix, func(payload []byte) error {
		key, seq, _ := strings.Cut(string(payload), ":")
		mu.Lock()
		got[key] = append(got[key], seq)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(records) {
		t.Fatalf("Records = %d, want %d", info.Records, len(records))
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		if len(got[key]) != perKey {
			t.Fatalf("key %s: %d records, want %d", key, len(got[key]), perKey)
		}
		for i, seq := range got[key] {
			if seq != fmt.Sprint(i) {
				t.Fatalf("key %s out of order at %d: got seq %s", key, i, seq)
			}
		}
	}
}

// A barrier record observes every earlier record and precedes every
// later one, regardless of which lanes they ride.
func TestReplayPartitionedBarrierOrdering(t *testing.T) {
	var records []string
	for i := 0; i < 20; i++ {
		records = append(records, fmt.Sprintf("k%d:pre", i))
	}
	records = append(records, "!barrier")
	for i := 0; i < 20; i++ {
		records = append(records, fmt.Sprintf("k%d:post", i))
	}
	dir := buildPartitionLog(t, records)

	var mu sync.Mutex
	applied := 0
	barrierSawAll := false
	postBeforeBarrier := false
	barrierDone := false
	_, err := ReplayPartitioned(dir, 1, 8, routeByPrefix, func(payload []byte) error {
		s := string(payload)
		mu.Lock()
		defer mu.Unlock()
		switch {
		case s == "!barrier":
			barrierSawAll = applied == 20
			barrierDone = true
		case strings.HasSuffix(s, ":post") && !barrierDone:
			postBeforeBarrier = true
		}
		applied++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !barrierSawAll {
		t.Fatal("barrier applied before all earlier records")
	}
	if postBeforeBarrier {
		t.Fatal("a post-barrier record applied before the barrier")
	}
	if applied != len(records) {
		t.Fatalf("applied %d records, want %d", applied, len(records))
	}
}

// The first apply error stops dispatch and is returned; the pool
// drains without deadlock.
func TestReplayPartitionedApplyErrorAborts(t *testing.T) {
	var records []string
	for i := 0; i < 200; i++ {
		records = append(records, fmt.Sprintf("k%d:%d", i%5, i))
	}
	dir := buildPartitionLog(t, records)

	boom := errors.New("boom")
	var mu sync.Mutex
	applied := 0
	_, err := ReplayPartitioned(dir, 1, 4, routeByPrefix, func(payload []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if applied == 10 {
			return boom
		}
		applied++
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if applied >= len(records) {
		t.Fatal("error did not stop the replay")
	}
}

// Route errors surface too, and workers <= 1 falls back to plain
// serial replay with identical results.
func TestReplayPartitionedRouteErrorAndSerialFallback(t *testing.T) {
	dir := buildPartitionLog(t, []string{"a:0", "malformed", "a:1"})
	_, err := ReplayPartitioned(dir, 1, 4, routeByPrefix, func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "malformed record") {
		t.Fatalf("route error lost: %v", err)
	}

	dir = buildPartitionLog(t, []string{"a:0", "b:0", "!m", "a:1"})
	var order []string
	info, err := ReplayPartitioned(dir, 1, 1, routeByPrefix, func(payload []byte) error {
		order = append(order, string(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 4 || len(order) != 4 || order[2] != "!m" {
		t.Fatalf("serial fallback: info=%+v order=%v", info, order)
	}
}
