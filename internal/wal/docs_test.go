package wal_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"xmldyn/internal/repo"
	"xmldyn/internal/store"
	"xmldyn/internal/update"
	"xmldyn/internal/wal"
	"xmldyn/internal/xmltree"
)

// TestDurabilityDocConstants is the docs-check gate: every constant
// docs/DURABILITY.md quotes in its golden tables must equal the value
// in the source. The doc promises a reader can reimplement recovery
// from it alone; this test is what makes that promise hold across
// refactors. CI runs it as a dedicated step.
func TestDurabilityDocConstants(t *testing.T) {
	path := filepath.Join("..", "..", "docs", "DURABILITY.md")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("docs/DURABILITY.md must exist (it specifies the on-disk format): %v", err)
	}

	// Parse `| `pkg.Name` | `value` |` table rows; the qualified-name
	// requirement keeps non-golden tables (like the record-type layout
	// table) out of the comparison.
	rowRe := regexp.MustCompile("(?m)^\\|\\s*`([a-z]+\\.[A-Za-z0-9]+)`\\s*\\|\\s*`([^`]+)`\\s*\\|")
	documented := make(map[string]string)
	for _, m := range rowRe.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = m[2]
	}
	if len(documented) == 0 {
		t.Fatal("no golden-constant rows found in docs/DURABILITY.md")
	}

	expect := map[string]string{
		"wal.Magic":                       strconv.Quote(wal.Magic),
		"wal.Version":                     fmt.Sprint(wal.Version),
		"wal.HeaderSize":                  fmt.Sprint(wal.HeaderSize),
		"wal.FrameHeaderSize":             fmt.Sprint(wal.FrameHeaderSize),
		"wal.MaxRecordSize":               fmt.Sprint(wal.MaxRecordSize),
		"wal.SegmentPattern":              strconv.Quote(wal.SegmentPattern),
		"wal.DefaultSegmentBytes":         fmt.Sprint(wal.DefaultSegmentBytes),
		"repo.DefaultAutoCheckpointBytes": fmt.Sprint(repo.DefaultAutoCheckpointBytes),
		"store.ManifestName":              strconv.Quote(store.ManifestName),
		"store.VersionSnapshot":           fmt.Sprint(store.VersionSnapshot),
		"store.VersionRepo":               fmt.Sprint(store.VersionRepo),
		"store.VersionManifestV4":         fmt.Sprint(store.VersionManifestV4),
		"store.VersionManifest":           fmt.Sprint(store.VersionManifest),
		"store.VersionDocSnap":            fmt.Sprint(store.VersionDocSnap),
		"store.DocSnapPattern":            strconv.Quote(store.DocSnapPattern),
		"repo.RecOpen":                    fmt.Sprint(repo.RecOpen),
		"repo.RecBatch":                   fmt.Sprint(repo.RecBatch),
		"repo.RecDrop":                    fmt.Sprint(repo.RecDrop),
		"repo.RecMulti":                   fmt.Sprint(repo.RecMulti),
		"update.SubtreeInline":            fmt.Sprint(update.SubtreeInline),
		"update.SubtreeBackref":           fmt.Sprint(update.SubtreeBackref),
		"update.OpInsertBefore":           fmt.Sprint(int(update.OpInsertBefore)),
		"update.OpInsertAfter":            fmt.Sprint(int(update.OpInsertAfter)),
		"update.OpInsertFirstChild":       fmt.Sprint(int(update.OpInsertFirstChild)),
		"update.OpAppendChild":            fmt.Sprint(int(update.OpAppendChild)),
		"update.OpInsertSubtreeBefore":    fmt.Sprint(int(update.OpInsertSubtreeBefore)),
		"update.OpInsertSubtreeAfter":     fmt.Sprint(int(update.OpInsertSubtreeAfter)),
		"update.OpInsertSubtreeFirst":     fmt.Sprint(int(update.OpInsertSubtreeFirst)),
		"update.OpAppendSubtree":          fmt.Sprint(int(update.OpAppendSubtree)),
		"update.OpDelete":                 fmt.Sprint(int(update.OpDelete)),
		"update.OpSetText":                fmt.Sprint(int(update.OpSetText)),
		"update.OpRename":                 fmt.Sprint(int(update.OpRename)),
		"update.OpSetAttr":                fmt.Sprint(int(update.OpSetAttr)),
		"xmltree.KindDocument":            fmt.Sprint(int(xmltree.KindDocument)),
		"xmltree.KindElement":             fmt.Sprint(int(xmltree.KindElement)),
		"xmltree.KindAttribute":           fmt.Sprint(int(xmltree.KindAttribute)),
		"xmltree.KindText":                fmt.Sprint(int(xmltree.KindText)),
		"xmltree.KindComment":             fmt.Sprint(int(xmltree.KindComment)),
		"xmltree.KindProcInst":            fmt.Sprint(int(xmltree.KindProcInst)),
	}

	for name, want := range expect {
		got, ok := documented[name]
		if !ok {
			t.Errorf("docs/DURABILITY.md is missing golden constant %s (code value %s)", name, want)
			continue
		}
		if got != want {
			t.Errorf("docs/DURABILITY.md documents %s = %s, code says %s", name, got, want)
		}
	}
	for name := range documented {
		if _, ok := expect[name]; !ok {
			t.Errorf("docs/DURABILITY.md documents unknown constant %s — add it to the golden test or remove it", name)
		}
	}
}

// TestDurabilityDocMentionsWALConstants requires every exported
// constant of internal/wal to be mentioned (as `wal.Name`) somewhere
// in docs/DURABILITY.md. The golden tables above pin exact values for
// the format-critical subset; this broader check catches a new
// exported constant shipping with no spec coverage at all.
func TestDurabilityDocMentionsWALConstants(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "DURABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gen, ok := decl.(*ast.GenDecl)
				if !ok || gen.Tok != token.CONST {
					continue
				}
				for _, spec := range gen.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !name.IsExported() {
							continue
						}
						checked++
						if !strings.Contains(string(doc), "wal."+name.Name) {
							t.Errorf("docs/DURABILITY.md never mentions exported constant wal.%s — specify it", name.Name)
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("found no exported constants in internal/wal — the parse filter is broken")
	}
}
