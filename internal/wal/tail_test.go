package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmldyn/internal/wal"
)

// TestTailReaderFollowsAppends drives a TailReader behind a live log:
// records appear as they are appended, ErrNoRecord at the caught-up
// tail, positions advance frame by frame.
func TestTailReaderFollowsAppends(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Create(dir, 1, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	tr, err := wal.OpenTail(dir, wal.Position{Segment: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Next(); !errors.Is(err, wal.ErrNoRecord) {
		t.Fatalf("empty log: got %v, want ErrNoRecord", err)
	}

	var want [][]byte
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		if err := log.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		ev, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(ev.Payload, w) {
			t.Fatalf("record %d: got %q, want %q", i, ev.Payload, w)
		}
		if ev.Pos.Segment != 1 {
			t.Fatalf("record %d: segment %d, want 1", i, ev.Pos.Segment)
		}
	}
	if _, err := tr.Next(); !errors.Is(err, wal.ErrNoRecord) {
		t.Fatalf("caught up: got %v, want ErrNoRecord", err)
	}
	if got, end := tr.Pos(), log.Position(); got != end {
		t.Fatalf("caught-up position %v != log end %v", got, end)
	}
}

// TestTailReaderHandsOffAtRotation proves the reader crosses segment
// boundaries with an explicit hand-off event per traversed segment and
// keeps yielding records from the successor.
func TestTailReaderHandsOffAtRotation(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Create(dir, 1, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	tr, err := wal.OpenTail(dir, wal.Position{Segment: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if err := log.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := log.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}

	ev, err := tr.Next()
	if err != nil || string(ev.Payload) != "before" {
		t.Fatalf("first record: %q, %v", ev.Payload, err)
	}
	ev, err = tr.Next()
	if err != nil || ev.Payload != nil {
		t.Fatalf("hand-off: payload %q, err %v; want nil payload", ev.Payload, err)
	}
	if ev.Pos != (wal.Position{Segment: 2, Offset: int64(wal.HeaderSize)}) {
		t.Fatalf("hand-off position %v", ev.Pos)
	}
	ev, err = tr.Next()
	if err != nil || string(ev.Payload) != "after" {
		t.Fatalf("post-rotation record: %q, %v", ev.Payload, err)
	}

	// A second rotation with no records yet: the hand-off is still
	// reported eagerly (consumers mirror empty segments too).
	if _, err := log.Rotate(); err != nil {
		t.Fatal(err)
	}
	ev, err = tr.Next()
	if err != nil || ev.Payload != nil || ev.Pos.Segment != 3 {
		t.Fatalf("eager hand-off: %+v, %v", ev, err)
	}
	if _, err := tr.Next(); !errors.Is(err, wal.ErrNoRecord) {
		t.Fatalf("empty successor: got %v, want ErrNoRecord", err)
	}
}

// TestTailReaderMidStreamStart opens a reader at a mid-segment frame
// boundary (resume-from-position, the replication reconnect path) and
// checks it sees exactly the suffix.
func TestTailReaderMidStreamStart(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Create(dir, 1, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := log.Append([]byte("skipped")); err != nil {
		t.Fatal(err)
	}
	resume := log.Position()
	if err := log.Append([]byte("wanted")); err != nil {
		t.Fatal(err)
	}
	tr, err := wal.OpenTail(dir, resume)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ev, err := tr.Next()
	if err != nil || string(ev.Payload) != "wanted" {
		t.Fatalf("resume read: %q, %v", ev.Payload, err)
	}
}

// TestTailReaderCorruption: a full frame with a flipped payload byte is
// ErrCorruptRecord, and a torn frame in a SEALED segment (successor
// exists) is ErrCorruptRecord too — live tailing tolerates no tears.
func TestTailReaderCorruption(t *testing.T) {
	t.Run("crc-flip", func(t *testing.T) {
		dir := t.TempDir()
		log, err := wal.Create(dir, 1, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append([]byte("victim")); err != nil {
			t.Fatal(err)
		}
		log.Close()
		path := filepath.Join(dir, wal.SegmentName(1))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tr, err := wal.OpenTail(dir, wal.Position{Segment: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if _, err := tr.Next(); !errors.Is(err, wal.ErrCorruptRecord) {
			t.Fatalf("got %v, want ErrCorruptRecord", err)
		}
	})
	t.Run("torn-sealed", func(t *testing.T) {
		dir := t.TempDir()
		log, err := wal.Create(dir, 1, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append([]byte("whole")); err != nil {
			t.Fatal(err)
		}
		if _, err := log.Rotate(); err != nil {
			t.Fatal(err)
		}
		log.Close()
		// Tear the sealed segment 1 mid-frame while segment 2 exists.
		path := filepath.Join(dir, wal.SegmentName(1))
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-2); err != nil {
			t.Fatal(err)
		}
		tr, err := wal.OpenTail(dir, wal.Position{Segment: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if _, err := tr.Next(); !errors.Is(err, wal.ErrCorruptRecord) {
			t.Fatalf("got %v, want ErrCorruptRecord", err)
		}
	})
}

// TestReplayGapErrorMessage pins the contiguity error's shape: a gap in
// the segment set must report the expected index AND the found one, so
// an operator sees the hole's extent, not just its left edge.
func TestReplayGapErrorMessage(t *testing.T) {
	dir := t.TempDir()
	for _, idx := range []uint64{3, 6} {
		log, err := wal.Create(dir, idx, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		log.Close()
	}
	_, err := wal.Replay(dir, 3, func([]byte) error { return nil })
	if !errors.Is(err, wal.ErrMissingSegment) {
		t.Fatalf("got %v, want ErrMissingSegment", err)
	}
	msg := err.Error()
	want := fmt.Sprintf("expected %s, found %s", wal.SegmentName(4), wal.SegmentName(6))
	if !strings.Contains(msg, want) {
		t.Fatalf("gap error %q does not report %q", msg, want)
	}
}
