package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReplayInfo summarises a Replay pass.
type ReplayInfo struct {
	// Records is the number of valid records handed to the callback.
	Records int
	// ValidSize is the byte offset just past the last valid record —
	// the size OpenAt should truncate to before appending.
	ValidSize int64
	// Torn reports whether bytes past ValidSize were discarded (a
	// truncated or CRC-failing tail, the signature of a crash
	// mid-append).
	Torn bool
}

// Replay streams every valid record of the WAL at path through fn in
// append order, reading one frame at a time — recovery memory stays
// O(largest record), not O(log size). A truncated or corrupt tail is
// not an error: replay stops cleanly at the last record whose frame
// and CRC check out and reports the cut in the returned info. A
// missing or misheadered file, or an fn error, aborts with that error
// (fn errors abort because a record that cannot be applied means
// recovered state would silently diverge from the log). The payload
// slice is reused between records: fn must not retain it after
// returning (decode copies what it keeps).
func Replay(path string, fn func(payload []byte) error) (ReplayInfo, error) {
	info := ReplayInfo{}
	f, err := os.Open(path)
	if err != nil {
		return info, err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	header := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return info, ErrShortHeader
	}
	if string(header[:len(Magic)]) != Magic {
		return info, fmt.Errorf("%w: magic %q", ErrBadHeader, header[:len(Magic)])
	}
	if header[len(Magic)] != Version {
		return info, fmt.Errorf("%w: version %d", ErrBadHeader, header[len(Magic)])
	}
	info.ValidSize = int64(HeaderSize)

	frame := make([]byte, FrameHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, frame); err != nil {
			if errors.Is(err, io.EOF) {
				return info, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn = true
				return info, nil
			}
			return info, err
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		want := binary.LittleEndian.Uint32(frame[4:8])
		if length > MaxRecordSize {
			info.Torn = true
			return info, nil
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn = true
				return info, nil
			}
			return info, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			info.Torn = true
			return info, nil
		}
		if err := fn(payload); err != nil {
			return info, fmt.Errorf("wal: replay record %d: %w", info.Records, err)
		}
		info.Records++
		info.ValidSize += int64(FrameHeaderSize) + int64(length)
	}
}
