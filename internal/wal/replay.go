package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ReplayInfo summarises a Replay pass over a segment set.
type ReplayInfo struct {
	// Records is the number of valid records handed to the callback,
	// across every segment.
	Records int
	// Segments is how many segments carry the live stream
	// (Last-First+1). Trailing record-free segments past a tear are
	// not counted; they are overwritten by the next rotation.
	Segments int
	// First and Last are the lowest and highest segment indices of the
	// live stream; Last names the segment OpenAt reopens for
	// appending.
	First, Last uint64
	// ValidSize is the byte offset just past the last valid record of
	// segment Last — the size OpenAt truncates it to. A value below
	// HeaderSize means segment Last is a crashed creation (its header
	// never fully reached disk; it cannot hold a record) and OpenAt
	// recreates it.
	ValidSize int64
	// LiveBytes is the total valid bytes across the whole set (sealed
	// segments' full sizes plus the last segment's valid prefix) — the
	// figure Log.LiveBytes continues from.
	LiveBytes int64
	// Torn reports whether bytes past ValidSize were discarded from
	// segment Last (a truncated or CRC-failing tail, the signature of
	// a crash mid-append — or a crashed segment creation).
	Torn bool
}

// errRecordAfterTear aborts the record-free scan of segments past a
// torn one: finding any record there means real corruption.
var errRecordAfterTear = errors.New("record after torn segment")

// Replay streams every valid record of the segment set in dir through
// fn in append order: segments first, first+1, … are replayed in index
// order, one frame at a time — recovery memory stays O(largest
// record), not O(log size). A truncated or corrupt tail in the LAST
// segment is not an error: replay stops cleanly at the last record
// whose frame and CRC check out and reports the cut in the returned
// info. Likewise a last segment shorter than its header is a crashed
// creation — it cannot hold a record (the header is synced before a
// segment accepts appends) — reported as a torn empty tail for OpenAt
// to recreate.
//
// A torn frame in a NON-final segment is tolerated only when every
// later segment holds zero records (then the tear is still a clean
// suffix cut of the global stream — the signature of a crash between
// a checkpoint's segment creation and its manifest switch while the
// old tail was unsynced); Replay then cuts the stream at the tear and
// OpenAt resumes appending there. If any record exists after the
// tear, replay aborts with ErrTornSegment: rotation seals a segment
// with an fsync before its successor takes records, so a record past
// mid-set damage means corruption, and replaying it would reorder the
// stream (no record after the damage is handed to fn).
//
// A gap in the index sequence, a missing first segment, a misheadered
// non-final segment, or an fn error abort with an error (fn errors
// abort because a record that cannot be applied means recovered state
// would silently diverge from the log). The payload slice is reused
// between records: fn must not retain it after returning (decode
// copies what it keeps).
func Replay(dir string, first uint64, fn func(payload []byte) error) (ReplayInfo, error) {
	info := ReplayInfo{}
	indices, err := listSegments(dir, first)
	if err != nil {
		return info, err
	}
	info.First = indices[0]
	last := indices[len(indices)-1]
	cut := false // a non-final tear was seen; later segments must be record-free
	for _, idx := range indices {
		name := SegmentName(idx)
		path := filepath.Join(dir, name)
		if cut {
			if err := requireRecordFree(path); err != nil {
				return info, fmt.Errorf("segment %s after torn %s: %w", name, SegmentName(info.Last), err)
			}
			continue
		}
		records, validSize, torn, err := replaySegment(path, fn)
		switch {
		case errors.Is(err, ErrShortHeader) && idx == last:
			// Crashed creation: adopt it as a torn, empty tail.
			info.Last, info.ValidSize, info.Torn = idx, 0, true
			continue
		case err != nil:
			return info, fmt.Errorf("segment %s: %w", name, err)
		}
		info.Records += records
		info.LiveBytes += validSize
		info.Last, info.ValidSize, info.Torn = idx, validSize, torn
		if torn && idx != last {
			cut = true
		}
	}
	info.Segments = int(info.Last - info.First + 1)
	return info, nil
}

// requireRecordFree verifies a segment past a tear holds no records: a
// missing-or-short header is fine (another crashed creation), a
// record is ErrTornSegment-grade corruption. No payload reaches any
// callback.
func requireRecordFree(path string) error {
	_, _, _, err := replaySegment(path, func([]byte) error { return errRecordAfterTear })
	switch {
	case errors.Is(err, errRecordAfterTear):
		return ErrTornSegment
	case errors.Is(err, ErrShortHeader):
		return nil
	default:
		return err
	}
}

// listSegments returns the contiguous segment indices first, first+1,
// … present in dir. Indices below first are ignored (dead segments a
// checkpoint retired; the repository deletes them as orphans). A
// missing first segment or a gap is ErrMissingSegment.
func listSegments(dir string, first uint64) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var indices []uint64
	for _, e := range entries {
		if idx, ok := ParseSegmentName(e.Name()); ok && idx >= first {
			indices = append(indices, idx)
		}
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("%w: no segment at or above %s", ErrMissingSegment, SegmentName(first))
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
	if indices[0] != first {
		return nil, fmt.Errorf("%w: first live segment %s missing (lowest present: %s)",
			ErrMissingSegment, SegmentName(first), SegmentName(indices[0]))
	}
	for i := 1; i < len(indices); i++ {
		if indices[i] != indices[i-1]+1 {
			return nil, fmt.Errorf("%w: expected %s, found %s", ErrMissingSegment,
				SegmentName(indices[i-1]+1), SegmentName(indices[i]))
		}
	}
	return indices, nil
}

// replaySegment streams one segment's valid records through fn,
// returning the record count, the valid prefix length, and whether a
// torn tail was cut. The caller decides whether torn is tolerable
// (last segment) or corruption (any earlier one).
func replaySegment(path string, fn func(payload []byte) error) (records int, validSize int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	header := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, 0, false, ErrShortHeader
	}
	if string(header[:len(Magic)]) != Magic {
		return 0, 0, false, fmt.Errorf("%w: magic %q", ErrBadHeader, header[:len(Magic)])
	}
	if header[len(Magic)] != Version {
		return 0, 0, false, fmt.Errorf("%w: version %d", ErrBadHeader, header[len(Magic)])
	}
	validSize = int64(HeaderSize)

	frame := make([]byte, FrameHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, frame); err != nil {
			if errors.Is(err, io.EOF) {
				return records, validSize, false, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return records, validSize, true, nil
			}
			return records, validSize, false, err
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		want := binary.LittleEndian.Uint32(frame[4:8])
		if length > MaxRecordSize {
			return records, validSize, true, nil
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, validSize, true, nil
			}
			return records, validSize, false, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return records, validSize, true, nil
		}
		if err := fn(payload); err != nil {
			return records, validSize, false, fmt.Errorf("wal: replay record %d: %w", records, err)
		}
		records++
		validSize += int64(FrameHeaderSize) + int64(length)
	}
}
