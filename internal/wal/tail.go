// Record-level tailing: a TailReader follows a live segment set from a
// byte position, yielding one CRC-checked record at a time and handing
// off to the successor segment at rotation — the read-side twin of
// Append that replication's shipper (internal/replica) streams from.
// Unlike Replay, which consumes a closed set once, a TailReader is
// meant to outlive the current end of the log: when it catches up with
// the append tail it reports ErrNoRecord and can be retried after the
// writer signals progress.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Tailing errors.
var (
	// ErrNoRecord reports that the reader has caught up with the append
	// tail: no complete record exists past the current position yet.
	// Retry after the writer makes progress.
	ErrNoRecord = errors.New("wal: no record available yet")
	// ErrCorruptRecord reports a full frame whose CRC does not match in
	// a position a live writer can no longer be appending to — real
	// corruption, not an in-flight append.
	ErrCorruptRecord = errors.New("wal: corrupt record in live segment set")
)

// Position addresses a byte boundary in the global record stream: a
// segment index and a byte offset within that segment file. Offsets
// always sit on frame boundaries (or the header end, HeaderSize, for a
// fresh segment). Positions order lexicographically: segment first,
// then offset.
type Position struct {
	// Segment is the segment index (SegmentPattern).
	Segment uint64
	// Offset is the byte offset within the segment file, just past the
	// last consumed record (HeaderSize when none).
	Offset int64
}

// Less reports whether p addresses an earlier stream byte than q.
func (p Position) Less(q Position) bool {
	if p.Segment != q.Segment {
		return p.Segment < q.Segment
	}
	return p.Offset < q.Offset
}

// String formats a position as segment:offset.
func (p Position) String() string { return fmt.Sprintf("%s:%d", SegmentName(p.Segment), p.Offset) }

// Position returns the log's current append position: the active
// segment index and its size. Every record appended so far lies
// strictly below it.
func (l *Log) Position() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Position{Segment: l.active, Offset: l.size}
}

// TailEvent is one step of a tailed stream: either a record (Payload
// non-nil) or a segment hand-off (Payload nil — the reader moved to a
// new segment whose index is Pos.Segment). Hand-offs are reported
// eagerly, one per traversed segment, so a consumer mirroring the
// stream reproduces the leader's exact segment boundaries, empty
// segments included.
type TailEvent struct {
	// Payload is the record payload, valid until the next Next call
	// (the buffer is reused); nil for a hand-off event.
	Payload []byte
	// Pos is the position just past this event: after the record's
	// frame, or {newSegment, HeaderSize} for a hand-off.
	Pos Position
}

// TailReader reads records from a segment set in append order,
// starting at an arbitrary frame boundary, and keeps working while a
// Log in the same directory appends: at the end of a sealed segment it
// hands off to the successor, at the end of the active segment it
// reports ErrNoRecord until more records land. It reads the files
// directly and needs no reference to the writing Log; it is NOT safe
// for concurrent use by multiple goroutines.
type TailReader struct {
	dir     string
	pos     Position
	f       *os.File
	payload []byte // reused record buffer
}

// OpenTail positions a TailReader at pos. The segment file must exist
// and hold a valid header; pos.Offset must be a frame boundary at or
// past the header (an Offset of 0 is normalised to HeaderSize).
func OpenTail(dir string, pos Position) (*TailReader, error) {
	if pos.Offset < int64(HeaderSize) {
		pos.Offset = int64(HeaderSize)
	}
	t := &TailReader{dir: dir, pos: pos}
	if err := t.open(); err != nil {
		return nil, err
	}
	return t, nil
}

// open opens the current segment and validates its header.
func (t *TailReader) open() error {
	f, err := os.Open(filepath.Join(t.dir, SegmentName(t.pos.Segment)))
	if err != nil {
		return err
	}
	header := make([]byte, HeaderSize)
	if _, err := io.ReadFull(f, header); err != nil {
		f.Close()
		return fmt.Errorf("%w: %s: %v", ErrShortHeader, SegmentName(t.pos.Segment), err)
	}
	if string(header[:len(Magic)]) != Magic || header[len(Magic)] != Version {
		f.Close()
		return fmt.Errorf("%w: %s", ErrBadHeader, SegmentName(t.pos.Segment))
	}
	t.f = f
	return nil
}

// Pos returns the reader's current position: just past the last event
// Next returned.
func (t *TailReader) Pos() Position { return t.pos }

// Close releases the underlying file.
func (t *TailReader) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// Next returns the next stream event: the next record of the current
// segment, or — when the segment is exhausted and its successor exists
// on disk — a hand-off event moving the reader to the successor.
// Rotation seals a segment with an fsync strictly before its successor
// is created, so once the successor is visible, a clean end of the
// current file is final and the hand-off is safe. At the end of the
// active segment (no successor yet) Next returns ErrNoRecord; retry
// after the writer signals progress. A partial frame whose segment has
// a successor, or a full frame failing its CRC, is ErrCorruptRecord:
// live tailing reads only what a healthy writer produced, so unlike
// Replay there is no torn tail to tolerate.
func (t *TailReader) Next() (TailEvent, error) {
	for {
		payload, n, err := t.tryRecord()
		if err == nil {
			t.pos.Offset += n
			return TailEvent{Payload: payload, Pos: t.pos}, nil
		}
		if !errors.Is(err, ErrNoRecord) {
			return TailEvent{}, err
		}
		// Caught up with this segment's current end. If a successor
		// exists the segment is sealed — but bytes may have landed
		// between our read and the rotation, so re-read once before
		// concluding the segment is exhausted.
		next := SegmentName(t.pos.Segment + 1)
		if _, serr := os.Stat(filepath.Join(t.dir, next)); serr != nil {
			return TailEvent{}, ErrNoRecord
		}
		payload, n, err = t.tryRecord()
		if err == nil {
			t.pos.Offset += n
			return TailEvent{Payload: payload, Pos: t.pos}, nil
		}
		if !errors.Is(err, ErrNoRecord) {
			return TailEvent{}, err
		}
		if partial, perr := t.hasPartialFrame(); perr != nil {
			return TailEvent{}, perr
		} else if partial {
			// A torn frame in a sealed segment: rotation synced every
			// appended byte before creating the successor, so this is
			// not an in-flight append.
			return TailEvent{}, fmt.Errorf("%w: torn frame in sealed %s at offset %d",
				ErrCorruptRecord, SegmentName(t.pos.Segment), t.pos.Offset)
		}
		if err := t.f.Close(); err != nil {
			return TailEvent{}, err
		}
		t.f = nil
		t.pos = Position{Segment: t.pos.Segment + 1, Offset: int64(HeaderSize)}
		if err := t.open(); err != nil {
			return TailEvent{}, err
		}
		return TailEvent{Payload: nil, Pos: t.pos}, nil
	}
}

// tryRecord attempts to read one complete frame at the current offset,
// returning the payload and the frame's total length. ErrNoRecord
// means the bytes for a full frame are not there (yet); ErrCorruptRecord
// means a full frame is present but fails its CRC.
func (t *TailReader) tryRecord() ([]byte, int64, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := t.f.ReadAt(hdr[:], t.pos.Offset); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, ErrNoRecord
		}
		return nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecordSize {
		return nil, 0, fmt.Errorf("%w: frame at %s claims %d bytes", ErrCorruptRecord, t.pos, length)
	}
	if uint32(cap(t.payload)) < length {
		t.payload = make([]byte, length)
	}
	t.payload = t.payload[:length]
	if _, err := t.f.ReadAt(t.payload, t.pos.Offset+FrameHeaderSize); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, ErrNoRecord
		}
		return nil, 0, err
	}
	if crc32.ChecksumIEEE(t.payload) != want {
		// A full payload read can still be an in-flight append caught
		// between the frame-header write and the payload bytes landing
		// only if the file grows past the frame later; distinguishing
		// that from corruption is the caller's re-read-after-seal job.
		// Within one segment a writer appends a frame with a single
		// write call, so a fully readable frame with a bad CRC is
		// corruption.
		return nil, 0, fmt.Errorf("%w: crc mismatch at %s", ErrCorruptRecord, t.pos)
	}
	return t.payload, int64(FrameHeaderSize) + int64(length), nil
}

// hasPartialFrame reports whether any bytes exist past the current
// offset (a torn frame) without consuming them.
func (t *TailReader) hasPartialFrame() (bool, error) {
	var b [1]byte
	_, err := t.f.ReadAt(b[:], t.pos.Offset)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, io.EOF) {
		return false, nil
	}
	return false, err
}
