// Partitioned replay: the parallel-recovery half of the incremental
// checkpoint design. The record stream a durable repository logs is
// almost perfectly partitionable — every record names exactly one
// document, except the multi-document transaction record, which must
// observe every earlier record and be observed by every later one.
// ReplayPartitioned exploits that: it streams the log exactly like
// Replay (same segment order, same torn-tail rules, same ReplayInfo),
// but fans records out to a bounded worker pool, one lane per key
// hash, so per-document apply cost runs on all cores while per-
// document order — the only order the repository's state depends on —
// is preserved. Barrier records drain every lane and apply inline on
// the dispatching goroutine, restoring the total order exactly where
// it matters.

package wal

import (
	"hash/fnv"
	"sync"
)

// Dispatch routes one replayed record. The route callback of
// ReplayPartitioned returns it without decoding the record body: Key
// partitions non-barrier records (records with equal keys apply in log
// order on one lane; records with different keys may apply
// concurrently), and Barrier marks a record that must observe every
// earlier record and precede every later one (it is applied inline
// after all lanes drain).
type Dispatch struct {
	// Key is the partition key — for the durable repository, the
	// document name the record targets. Ignored when Barrier is set.
	Key string
	// Barrier marks a total-order record (RecMulti): all lanes drain,
	// the record applies alone, then fan-out resumes.
	Barrier bool
}

// laneJob is one unit of lane work: a record payload to apply, or —
// when flush is non-nil — a drain marker the lane acknowledges.
type laneJob struct {
	payload []byte
	flush   *sync.WaitGroup
}

// partitionState shares first-error latching between the dispatcher
// and the lane workers.
type partitionState struct {
	mu  sync.Mutex
	err error
}

func (p *partitionState) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *partitionState) first() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// ReplayPartitioned replays the segment files in dir holding indices
// first and above, like Replay, but applies records on a pool of
// `workers` goroutines partitioned by the key that route extracts from
// each payload. Guarantees:
//
//   - records with equal keys are applied in log order, on one lane;
//   - a record routed as a Barrier is applied inline only after every
//     previously dispatched record has been applied, and before any
//     later record is dispatched;
//   - apply never runs concurrently with itself for the same key, and
//     route never runs concurrently at all (it is called on the
//     dispatching goroutine in log order — it must be cheap and must
//     not retain the payload, which is reused between calls);
//   - the payload slice passed to apply is private to that call.
//
// The first error from route or apply stops dispatch; remaining queued
// records are drained without applying and the error is returned.
// With workers <= 1 it degenerates to plain serial Replay. Torn-tail
// handling and the returned ReplayInfo are identical to Replay.
func ReplayPartitioned(dir string, first uint64, workers int, route func(payload []byte) (Dispatch, error), apply func(payload []byte) error) (ReplayInfo, error) {
	if workers <= 1 {
		return Replay(dir, first, func(payload []byte) error {
			if _, err := route(payload); err != nil {
				return err
			}
			return apply(payload)
		})
	}

	state := &partitionState{}
	lanes := make([]chan laneJob, workers)
	var wg sync.WaitGroup
	for i := range lanes {
		lanes[i] = make(chan laneJob, 64)
		wg.Add(1)
		go func(lane chan laneJob) {
			defer wg.Done()
			for job := range lane {
				if job.flush != nil {
					job.flush.Done()
					continue
				}
				if state.first() != nil {
					continue // drain after a failure elsewhere
				}
				if err := apply(job.payload); err != nil {
					state.fail(err)
				}
			}
		}(lanes[i])
	}

	// flushLanes blocks until every record dispatched so far has been
	// applied (or skipped by the failure drain).
	flushLanes := func() {
		var barrier sync.WaitGroup
		barrier.Add(len(lanes))
		for _, lane := range lanes {
			lane <- laneJob{flush: &barrier}
		}
		barrier.Wait()
	}

	laneFor := func(key string) chan laneJob {
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		return lanes[h.Sum32()%uint32(len(lanes))]
	}

	info, err := Replay(dir, first, func(payload []byte) error {
		if err := state.first(); err != nil {
			return err // a lane already failed: stop reading the log
		}
		d, err := route(payload)
		if err != nil {
			return err
		}
		if d.Barrier {
			flushLanes()
			if err := state.first(); err != nil {
				return err
			}
			return apply(payload)
		}
		// Replay reuses its payload buffer between callbacks; the lane
		// applies asynchronously, so it needs its own copy.
		laneFor(d.Key) <- laneJob{payload: append([]byte(nil), payload...)}
		return nil
	})

	for _, lane := range lanes {
		close(lane)
	}
	wg.Wait()
	if err == nil {
		err = state.first()
	}
	return info, err
}
