// Frozen subtrees: the immutability primitive behind the repository's
// MVCC snapshot reads (docs/CONCURRENCY.md). Freezing a subtree marks
// every node in it immutable; a frozen tree can be navigated, queried
// and serialised concurrently by any number of goroutines with no lock
// held, because nothing can change under them — every mutator refuses
// frozen nodes. Freezing is one-way: a frozen node never thaws, but
// Clone of a frozen node returns an ordinary mutable copy, so "thaw"
// is spelled Clone.
//
// Enforcement is split by signature, and the split is part of the
// contract (docs/CONCURRENCY.md §6): mutators that can return an error
// report ErrFrozen; mutators with no error path (SetName, SetValue,
// Detach, RemoveAttr) panic, because silently ignoring a write to a
// published snapshot would hide a real bug in the caller.
// (File comment — the package doc lives in xmltree.go's sibling,
// node.go.)

package xmltree

import "errors"

// ErrFrozen reports a mutation attempted on a frozen (snapshot) node.
// Error-returning mutators return it; void mutators panic instead.
var ErrFrozen = errors.New("xmltree: node is frozen (snapshot); Clone it to get a mutable copy")

// frozenPanic is the message void mutators panic with; tests match it.
const frozenPanic = "xmltree: mutation of a frozen (snapshot) node"

// Freeze marks the subtree rooted at n — the node, its attributes and
// all descendants — immutable. Freezing an already frozen subtree is a
// no-op. Freeze itself is not safe to run concurrently with mutators;
// callers freeze while they still hold whatever lock guarded the tree
// (the repository freezes version clones under the document read lock).
func (n *Node) Freeze() {
	n.frozen = true
	for _, a := range n.attrs {
		a.Freeze()
	}
	for _, c := range n.kids {
		c.Freeze()
	}
}

// Frozen reports whether the node is frozen.
func (n *Node) Frozen() bool { return n.frozen }

// Freeze marks the whole document tree immutable (see Node.Freeze).
func (d *Document) Freeze() { d.node.Freeze() }

// Frozen reports whether the document is frozen.
func (d *Document) Frozen() bool { return d.node.frozen }

// mustThaw panics when n is frozen; void mutators call it first.
func (n *Node) mustThaw() {
	if n.frozen {
		panic(frozenPanic)
	}
}
