package xmltree

import (
	"fmt"
	"math/rand"
)

// GenOptions parameterises the synthetic document generator. The paper is
// a survey and ships no datasets; the generator provides the "very large
// documents" and structured trees its scenarios describe (DESIGN.md §5).
type GenOptions struct {
	Seed        int64
	MaxDepth    int     // maximum element nesting depth below the root
	MaxChildren int     // maximum element children per element
	AttrProb    float64 // probability that an element carries an attribute
	TextProb    float64 // probability that a leaf element carries text
	// TargetNodes, when > 0, stops growth once roughly this many
	// labellable nodes exist.
	TargetNodes int
}

// DefaultGenOptions returns a mid-sized bushy document profile.
func DefaultGenOptions() GenOptions {
	return GenOptions{Seed: 1, MaxDepth: 6, MaxChildren: 8, AttrProb: 0.3, TextProb: 0.5}
}

// Generate builds a random document according to opt. Generation is fully
// deterministic for a given options value.
func Generate(opt GenOptions) *Document {
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = 1
	}
	if opt.MaxChildren <= 0 {
		opt.MaxChildren = 2
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	g := &generator{opt: opt, rng: rng}
	doc := NewDocument()
	root := NewElement("root")
	if err := doc.SetRoot(root); err != nil {
		panic(err) // cannot happen: root is an element
	}
	g.count = 1
	if opt.TargetNodes > 0 {
		g.fillToTarget(root)
	} else {
		g.fill(root, 0)
	}
	return doc
}

// fillToTarget grows the tree breadth-first until the node budget is
// spent, guaranteeing the target is reached whenever MaxDepth permits.
func (g *generator) fillToTarget(root *Node) {
	type item struct {
		n     *Node
		depth int
	}
	queue := []item{{root, 0}}
	for len(queue) > 0 && g.budgetLeft() {
		it := queue[0]
		queue = queue[1:]
		if g.rng.Float64() < g.opt.AttrProb && g.budgetLeft() {
			if _, err := it.n.SetAttr(fmt.Sprintf("a%d", g.next), fmt.Sprintf("v%d", g.next)); err == nil {
				g.count++
				g.next++
			}
		}
		if it.depth >= g.opt.MaxDepth {
			continue
		}
		n := 1 + g.rng.Intn(g.opt.MaxChildren)
		for i := 0; i < n && g.budgetLeft(); i++ {
			c := NewElement(fmt.Sprintf("e%d", g.next))
			g.next++
			if err := it.n.AppendChild(c); err != nil {
				return
			}
			g.count++
			queue = append(queue, item{c, it.depth + 1})
		}
	}
}

type generator struct {
	opt   GenOptions
	rng   *rand.Rand
	count int
	next  int
}

func (g *generator) budgetLeft() bool {
	return g.opt.TargetNodes <= 0 || g.count < g.opt.TargetNodes
}

func (g *generator) fill(e *Node, depth int) {
	if g.rng.Float64() < g.opt.AttrProb && g.budgetLeft() {
		if _, err := e.SetAttr(fmt.Sprintf("a%d", g.next), fmt.Sprintf("v%d", g.next)); err == nil {
			g.count++
			g.next++
		}
	}
	if depth >= g.opt.MaxDepth || !g.budgetLeft() {
		if g.rng.Float64() < g.opt.TextProb {
			_ = e.AppendChild(NewText(fmt.Sprintf("t%d", g.next)))
			g.next++
		}
		return
	}
	n := g.rng.Intn(g.opt.MaxChildren + 1)
	for i := 0; i < n && g.budgetLeft(); i++ {
		c := NewElement(fmt.Sprintf("e%d", g.next))
		g.next++
		if err := e.AppendChild(c); err != nil {
			return
		}
		g.count++
		g.fill(c, depth+1)
	}
	if n == 0 && g.rng.Float64() < g.opt.TextProb {
		_ = e.AppendChild(NewText(fmt.Sprintf("t%d", g.next)))
		g.next++
	}
}

// GenerateWide builds a document whose root has exactly n element children
// and no deeper structure: the fan-out shape used by the sibling-insertion
// experiments (claims C2, C6 in DESIGN.md).
func GenerateWide(n int) *Document {
	doc := NewDocument()
	root := NewElement("root")
	_ = doc.SetRoot(root)
	for i := 0; i < n; i++ {
		_ = root.AppendChild(NewElement(fmt.Sprintf("c%d", i)))
	}
	return doc
}

// GenerateDeep builds a single chain of n nested elements: the depth shape
// used by level-encoding and prefix-growth probes.
func GenerateDeep(n int) *Document {
	doc := NewDocument()
	root := NewElement("d0")
	_ = doc.SetRoot(root)
	cur := root
	for i := 1; i < n; i++ {
		c := NewElement(fmt.Sprintf("d%d", i))
		_ = cur.AppendChild(c)
		cur = c
	}
	return doc
}

// GenerateBalanced builds a complete tree of the given depth and fan-out.
// depth 0 yields just the root.
func GenerateBalanced(depth, fanout int) *Document {
	doc := NewDocument()
	root := NewElement("n")
	_ = doc.SetRoot(root)
	var grow func(e *Node, d int)
	grow = func(e *Node, d int) {
		if d >= depth {
			return
		}
		for i := 0; i < fanout; i++ {
			c := NewElement(fmt.Sprintf("n%d_%d", d+1, i))
			_ = e.AppendChild(c)
			grow(c, d+1)
		}
	}
	grow(root, 0)
	return doc
}
