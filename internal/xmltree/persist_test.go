package xmltree

import (
	"fmt"
	"sync"
	"testing"
)

// TestPublishVersionSharesUntouchedSubtrees: after a single-spine
// mutation, republishing copies only the spine and shares every other
// subtree with the previous version by pointer.
func TestPublishVersionSharesUntouchedSubtrees(t *testing.T) {
	doc := NewDocument()
	root := NewElement("root")
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	var kids []*Node
	for i := 0; i < 8; i++ {
		k := NewElement(fmt.Sprintf("k%d", i))
		if _, err := k.SetAttr("i", fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
		if err := root.AppendChild(k); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, k)
	}
	v1 := doc.PublishVersion(1)

	// Touch one child: only that child and the spine above it may be
	// recopied.
	kids[3].SetName("renamed")
	v2 := doc.PublishVersion(2)

	if v1 == v2 {
		t.Fatal("publish after a change returned the same version root")
	}
	r1 := v1.Children()[0]
	r2 := v2.Children()[0]
	if r1 == r2 {
		t.Fatal("spine (root element) was shared despite a change below it")
	}
	for i := range kids {
		s1, s2 := r1.Children()[i], r2.Children()[i]
		if i == 3 {
			if s1 == s2 {
				t.Fatal("changed child was shared between versions")
			}
			if s2.BirthSeq() != 2 {
				t.Fatalf("changed child birth seq = %d, want 2", s2.BirthSeq())
			}
			continue
		}
		if s1 != s2 {
			t.Fatalf("untouched child %d was recopied", i)
		}
		if s1.BirthSeq() != 1 {
			t.Fatalf("untouched child %d birth seq = %d, want 1", i, s1.BirthSeq())
		}
	}
}

// TestPublishUnchangedReturnsSameRoot: republishing an unchanged
// document is an allocation-free pointer return.
func TestPublishUnchangedReturnsSameRoot(t *testing.T) {
	doc := SampleBook()
	v1 := doc.PublishVersion(1)
	if got := doc.PublishVersion(2); got != v1 {
		t.Fatal("unchanged republish returned a new root")
	}
	allocs := testing.AllocsPerRun(100, func() {
		doc.PublishVersion(3)
	})
	if allocs != 0 {
		t.Fatalf("unchanged republish allocates: %v allocs", allocs)
	}
}

// TestVersionViewNavigation: a version view serialises identically to
// the live document it was published from, has consistent parent
// pointers, document order and sibling navigation, and refuses
// mutation.
func TestVersionViewNavigation(t *testing.T) {
	doc := SampleBook()
	want := doc.XML()
	view := OpenVersion(doc.PublishVersion(1))

	if got := view.XML(); got != want {
		t.Fatalf("view serialisation differs:\n got %s\nwant %s", got, want)
	}
	if !view.Frozen() {
		t.Fatal("version view is not frozen")
	}
	if err := view.Validate(); err != nil {
		t.Fatal(err)
	}

	// Parent pointers are materialised correctly on every axis walk.
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, a := range n.Attributes() {
			if a.Parent() != n {
				t.Fatalf("attribute %q has wrong parent", a.Name())
			}
		}
		for _, c := range n.Children() {
			if c.Parent() != n {
				t.Fatalf("child %q has wrong parent", c.Name())
			}
			walk(c)
		}
	}
	walk(view.Node())

	// Document order over the view matches preorder ranks.
	nodes := view.LabelledNodes()
	for i := 1; i < len(nodes); i++ {
		if DocOrderCompare(nodes[i-1], nodes[i]) >= 0 {
			t.Fatalf("doc order violated at %d (%s >= %s)", i, nodes[i-1].Name(), nodes[i].Name())
		}
	}

	// Sibling/index navigation agrees with the child lists.
	r := view.Root()
	for i, c := range r.Children() {
		if c.Index() != i {
			t.Fatalf("child %d reports index %d", i, c.Index())
		}
		if i > 0 && c.PrevSibling() != r.Children()[i-1] {
			t.Fatalf("child %d PrevSibling mismatch", i)
		}
	}

	// Mutation is refused with the frozen contract.
	if _, err := r.SetAttr("x", "y"); err != ErrFrozen {
		t.Fatalf("SetAttr on view: %v, want ErrFrozen", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetValue on view did not panic")
			}
		}()
		r.SetValue("boom")
	}()
}

// TestVersionViewStableIdentity: repeated traversals of one view
// resolve to the same *Node identities (lazily materialised shells are
// cached, not rebuilt).
func TestVersionViewStableIdentity(t *testing.T) {
	doc := SampleBook()
	view := OpenVersion(doc.PublishVersion(1))
	first := view.LabelledNodes()
	second := view.LabelledNodes()
	if len(first) != len(second) || len(first) == 0 {
		t.Fatalf("traversal sizes differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("node %d identity changed between traversals", i)
		}
	}
}

// TestVersionIsolation: heavy live mutation after publication leaves
// the published version byte-identical.
func TestVersionIsolation(t *testing.T) {
	doc := SampleBook()
	want := doc.XML()
	view := OpenVersion(doc.PublishVersion(1))

	root := doc.Root()
	root.SetName("rewritten")
	if _, err := root.SetAttr("epoch", "2"); err != nil {
		t.Fatal(err)
	}
	kids := root.Children()
	if len(kids) < 2 {
		t.Fatal("sample too small")
	}
	kids[0].Detach()
	if err := root.AppendChild(NewElement("tail")); err != nil {
		t.Fatal(err)
	}
	doc.PublishVersion(2)

	if got := view.XML(); got != want {
		t.Fatalf("published version changed under live mutation:\n got %s\nwant %s", got, want)
	}
	if doc.XML() == want {
		t.Fatal("live document did not advance")
	}
}

// TestDetachRegraftSharesSubtree: moving a published subtree shares its
// persistent form with the previous version instead of recopying it.
func TestDetachRegraftSharesSubtree(t *testing.T) {
	doc := NewDocument()
	root := NewElement("root")
	if err := doc.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	a, b := NewElement("a"), NewElement("b")
	moved := NewElement("moved")
	if err := moved.AppendChild(NewText("payload")); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{a, b} {
		if err := root.AppendChild(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.AppendChild(moved); err != nil {
		t.Fatal(err)
	}
	doc.PublishVersion(1)
	g1 := moved.shadow
	if g1 == nil {
		t.Fatal("published subtree has no shadow")
	}

	// Move under b: the subtree content is untouched, so its persistent
	// form must be shared.
	if err := b.AppendChild(moved); err != nil {
		t.Fatal(err)
	}
	v2 := doc.PublishVersion(2)
	if moved.shadow != g1 {
		t.Fatal("moved subtree was recopied on publish")
	}
	g2 := v2.Children()[0].Children()[1].Children()[0]
	if g2 != g1 {
		t.Fatal("version 2 does not share the moved subtree with version 1")
	}
}

// TestPublishAllocsSpineBounded: republication cost scales with the
// changed spine, not with document size — a one-leaf change in a wide
// document allocates a handful of nodes; in a deep chain it allocates
// proportional to depth.
func TestPublishAllocsSpineBounded(t *testing.T) {
	wide := GenerateWide(1000)
	leaf := wide.Root().Children()[500]
	seq := uint64(1)
	wide.PublishVersion(seq)
	wideAllocs := testing.AllocsPerRun(50, func() {
		seq++
		leaf.SetName("w")
		wide.PublishVersion(seq)
	})
	// Spine: document node, root element, leaf + their child slices.
	if wideAllocs > 10 {
		t.Fatalf("wide-doc spine publish allocates %v, want <= 10", wideAllocs)
	}

	const depth = 64
	deep := GenerateDeep(depth)
	tip := deep.Root()
	for tip.FirstChild() != nil && tip.FirstChild().Kind() == KindElement {
		tip = tip.FirstChild()
	}
	seq = 1
	deep.PublishVersion(seq)
	deepAllocs := testing.AllocsPerRun(50, func() {
		seq++
		tip.SetName("d")
		deep.PublishVersion(seq)
	})
	if deepAllocs < depth || deepAllocs > 4*depth {
		t.Fatalf("deep-chain spine publish allocates %v, want O(depth=%d)", deepAllocs, depth)
	}
	if wideAllocs*4 > deepAllocs {
		t.Fatalf("wide (%v) vs deep (%v) allocs do not show spine scaling", wideAllocs, deepAllocs)
	}
}

// TestSameParentReinsert: moving a node to a new position under its
// own parent adjusts for the implicit detach instead of running the
// splice past the child list (regression: AppendChild of an existing
// last-but-one child used to panic).
func TestSameParentReinsert(t *testing.T) {
	root := NewElement("root")
	var kids [3]*Node
	for i := range kids {
		kids[i] = NewElement(fmt.Sprintf("k%d", i))
		if err := root.AppendChild(kids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Move the first child to the end.
	if err := root.AppendChild(kids[0]); err != nil {
		t.Fatal(err)
	}
	want := []*Node{kids[1], kids[2], kids[0]}
	for i, k := range root.Children() {
		if k != want[i] {
			t.Fatalf("child %d = %s after same-parent append", i, k.Name())
		}
	}
	// And back to the front.
	if err := root.PrependChild(kids[0]); err != nil {
		t.Fatal(err)
	}
	if root.Children()[0] != kids[0] || len(root.Children()) != 3 {
		t.Fatal("same-parent prepend misplaced the child")
	}

	// Attribute counterpart: move the first attribute to the end slot.
	e := NewElement("e")
	var as [3]*Node
	for i := range as {
		as[i] = NewAttribute(fmt.Sprintf("a%d", i), "v")
		if err := e.AppendAttr(as[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.InsertAttrAt(3, as[0]); err != nil {
		t.Fatal(err)
	}
	wantA := []*Node{as[1], as[2], as[0]}
	for i, a := range e.Attributes() {
		if a != wantA[i] {
			t.Fatalf("attr %d = %s after same-parent reinsert", i, a.Name())
		}
	}
}

// TestConcurrentViewExpansion: many goroutines materialising and
// reading the same version view concurrently agree on content (run
// with -race to exercise the expansion synchronisation).
func TestConcurrentViewExpansion(t *testing.T) {
	doc := Generate(DefaultGenOptions())
	want := doc.XML()
	view := OpenVersion(doc.PublishVersion(1))

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := view.XML(); got != want {
				errs <- fmt.Errorf("concurrent reader saw different serialisation")
				return
			}
			n := 0
			view.WalkLabelled(func(*Node) bool { n++; return true })
			if n != view.LabelledCount() {
				errs <- fmt.Errorf("concurrent walk count mismatch")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
