package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary bytes either parse or error — the
// parser must not panic on garbage.
func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseString(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseMutatedDocuments: single-byte mutations of a valid document
// either parse to a valid tree or error cleanly.
func TestParseMutatedDocuments(t *testing.T) {
	base := SampleBook().XML()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		data := []byte(base)
		pos := rng.Intn(len(data))
		data[pos] = byte(rng.Intn(128))
		doc, err := ParseString(string(data))
		if err != nil {
			continue
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("mutation at %d parsed into an invalid tree: %v", pos, err)
		}
		// Whatever parsed must serialise and re-parse to itself.
		re, err := ParseString(doc.XML())
		if err != nil {
			t.Fatalf("mutation at %d: reserialised form does not parse: %v\n%s", pos, err, doc.XML())
		}
		if re.XML() != doc.XML() {
			t.Fatalf("mutation at %d: unstable serialisation", pos)
		}
	}
}

// TestDeepNesting: very deep documents parse and serialise without
// stack trouble at realistic depths.
func TestDeepNesting(t *testing.T) {
	depth := 2000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("x")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	doc, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if doc.MaxDepth() != depth-1 {
		t.Fatalf("depth: %d", doc.MaxDepth())
	}
	if _, err := ParseString(doc.XML()); err != nil {
		t.Fatal(err)
	}
}

// TestHugeAttributeCount: wide attribute lists stay ordered.
func TestHugeAttributeCount(t *testing.T) {
	e := NewElement("e")
	for i := 0; i < 500; i++ {
		if _, err := e.SetAttr(attrName(i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Attributes()) != 500 {
		t.Fatalf("attrs: %d", len(e.Attributes()))
	}
	doc, _ := NewDocumentWithRoot(e)
	re, err := ParseString(doc.XML())
	if err != nil {
		t.Fatal(err)
	}
	attrs := re.Root().Attributes()
	for i, a := range attrs {
		if a.Name() != attrName(i) {
			t.Fatalf("attr %d order: %s", i, a.Name())
		}
	}
}

func attrName(i int) string {
	letters := "abcdefghij"
	var sb strings.Builder
	sb.WriteByte('a')
	for x := i; x > 0; x /= 10 {
		sb.WriteByte(letters[x%10])
	}
	return sb.String()
}
