package xmltree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary bytes either parse or error — the
// parser must not panic on garbage.
func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseString(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseMutatedDocuments: single-byte mutations of a valid document
// either parse to a valid tree or error cleanly.
func TestParseMutatedDocuments(t *testing.T) {
	base := SampleBook().XML()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		data := []byte(base)
		pos := rng.Intn(len(data))
		data[pos] = byte(rng.Intn(128))
		doc, err := ParseString(string(data))
		if err != nil {
			continue
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("mutation at %d parsed into an invalid tree: %v", pos, err)
		}
		// Whatever parsed must serialise and re-parse to itself.
		re, err := ParseString(doc.XML())
		if err != nil {
			t.Fatalf("mutation at %d: reserialised form does not parse: %v\n%s", pos, err, doc.XML())
		}
		if re.XML() != doc.XML() {
			t.Fatalf("mutation at %d: unstable serialisation", pos)
		}
	}
}

// TestDeepNesting: very deep documents parse and serialise without
// stack trouble at realistic depths.
func TestDeepNesting(t *testing.T) {
	depth := 2000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("x")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	doc, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if doc.MaxDepth() != depth-1 {
		t.Fatalf("depth: %d", doc.MaxDepth())
	}
	if _, err := ParseString(doc.XML()); err != nil {
		t.Fatal(err)
	}
}

// TestHugeAttributeCount: wide attribute lists stay ordered.
func TestHugeAttributeCount(t *testing.T) {
	e := NewElement("e")
	for i := 0; i < 500; i++ {
		if _, err := e.SetAttr(attrName(i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Attributes()) != 500 {
		t.Fatalf("attrs: %d", len(e.Attributes()))
	}
	doc, _ := NewDocumentWithRoot(e)
	re, err := ParseString(doc.XML())
	if err != nil {
		t.Fatal(err)
	}
	attrs := re.Root().Attributes()
	for i, a := range attrs {
		if a.Name() != attrName(i) {
			t.Fatalf("attr %d order: %s", i, a.Name())
		}
	}
}

// TestRandomOpsPreservePinnedVersions is the structure-sharing property
// test: random batches of structural and content mutations against a
// document with pinned published versions must leave every old version
// byte-identical (serialise + compare) while the live document
// advances, and each new version must serialise exactly like the live
// document at its publication point.
func TestRandomOpsPreservePinnedVersions(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			doc := SampleBook()
			seq := uint64(1)
			type pinned struct {
				seq  uint64
				view *Document
				xml  string
			}
			var pins []pinned
			pin := func() {
				v := OpenVersion(doc.PublishVersion(seq))
				pins = append(pins, pinned{seq: seq, view: v, xml: doc.XML()})
				if got := v.XML(); got != doc.XML() {
					t.Fatalf("seq %d: fresh version differs from live document", seq)
				}
				seq++
			}
			pin()
			for round := 0; round < 30; round++ {
				for op := 0; op < 1+rng.Intn(6); op++ {
					randomMutation(t, rng, doc)
				}
				if err := doc.Validate(); err != nil {
					t.Fatalf("round %d: live tree invalid: %v", round, err)
				}
				pin()
				for _, p := range pins {
					if got := p.view.XML(); got != p.xml {
						t.Fatalf("round %d: pinned version %d changed:\n got %s\nwant %s",
							round, p.seq, got, p.xml)
					}
				}
			}
		})
	}
}

// randomMutation applies one random structural or content mutation to
// a random element of the live document.
func randomMutation(t *testing.T, rng *rand.Rand, doc *Document) {
	t.Helper()
	var elems []*Node
	doc.WalkLabelled(func(n *Node) bool {
		if n.Kind() == KindElement {
			elems = append(elems, n)
		}
		return true
	})
	if len(elems) == 0 {
		return
	}
	n := elems[rng.Intn(len(elems))]
	switch rng.Intn(7) {
	case 0:
		if err := n.AppendChild(NewElement(fmt.Sprintf("e%d", rng.Intn(100)))); err != nil {
			t.Fatal(err)
		}
	case 1:
		if err := n.PrependChild(NewText(fmt.Sprintf("t%d", rng.Intn(100)))); err != nil {
			t.Fatal(err)
		}
	case 2:
		if _, err := n.SetAttr(attrName(rng.Intn(20)), fmt.Sprint(rng.Intn(100))); err != nil {
			t.Fatal(err)
		}
	case 3:
		n.SetName(fmt.Sprintf("r%d", rng.Intn(100)))
	case 4:
		if attrs := n.Attributes(); len(attrs) > 0 {
			n.RemoveAttr(attrs[rng.Intn(len(attrs))].Name())
		}
	case 5:
		// Delete a non-root subtree.
		if n != doc.Root() && n.Parent() != nil {
			n.Detach()
		}
	case 6:
		// Move a non-root subtree under another element that is not
		// one of its own descendants.
		if n == doc.Root() || n.Parent() == nil {
			return
		}
		dst := elems[rng.Intn(len(elems))]
		if dst == n || n.IsAncestorOf(dst) {
			return
		}
		if err := dst.AppendChild(n); err != nil {
			t.Fatal(err)
		}
	}
}

func attrName(i int) string {
	letters := "abcdefghij"
	var sb strings.Builder
	sb.WriteByte('a')
	for x := i; x > 0; x /= 10 {
		sb.WriteByte(letters[x%10])
	}
	return sb.String()
}
