package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls how textual XML is turned into a tree.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes that consist entirely of
	// whitespace. The default drops them, matching the paper's example
	// where indentation does not appear as tree nodes.
	KeepWhitespaceText bool
	// KeepComments retains comment nodes. Default: true-like behaviour is
	// desired, so the flag is inverted: set DropComments to discard them.
	DropComments bool
	// DropProcInsts discards processing instructions.
	DropProcInsts bool
}

// Parse reads a complete XML document from r using the default options.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithOptions(r, ParseOptions{})
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseWithOptions reads a complete XML document from r.
func ParseWithOptions(r io.Reader, opt ParseOptions) (*Document, error) {
	dec := xml.NewDecoder(r)
	doc := NewDocument()
	cur := doc.node
	seenRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if cur == doc.node {
				if seenRoot {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				seenRoot = true
			}
			e := NewElement(qname(t.Name))
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					// Namespace declarations are kept as ordinary
					// attributes so serialisation round-trips.
					if _, err := e.SetAttr(xmlnsName(a.Name), a.Value); err != nil {
						return nil, err
					}
					continue
				}
				if _, err := e.SetAttr(qname(a.Name), a.Value); err != nil {
					return nil, err
				}
			}
			if err := cur.AppendChild(e); err != nil {
				return nil, fmt.Errorf("xmltree: parse: %w", err)
			}
			cur = e
		case xml.EndElement:
			if cur == doc.node {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %s", qname(t.Name))
			}
			cur = cur.parent
		case xml.CharData:
			s := string(t)
			if !opt.KeepWhitespaceText && strings.TrimSpace(s) == "" {
				continue
			}
			if cur == doc.node {
				continue // ignore stray top-level whitespace/text
			}
			if err := cur.AppendChild(NewText(s)); err != nil {
				return nil, fmt.Errorf("xmltree: parse: %w", err)
			}
		case xml.Comment:
			if opt.DropComments {
				continue
			}
			if err := cur.AppendChild(NewComment(string(t))); err != nil {
				return nil, fmt.Errorf("xmltree: parse: %w", err)
			}
		case xml.ProcInst:
			if opt.DropProcInsts || t.Target == "xml" {
				continue // the XML declaration is not a tree node
			}
			if err := cur.AppendChild(NewProcInst(t.Target, string(t.Inst))); err != nil {
				return nil, fmt.Errorf("xmltree: parse: %w", err)
			}
		case xml.Directive:
			// DOCTYPE and friends carry no tree structure; skip.
		}
	}
	if cur != doc.node {
		return nil, fmt.Errorf("xmltree: parse: unexpected EOF inside element %q", cur.name)
	}
	if doc.Root() == nil {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	return doc, nil
}

func qname(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	// encoding/xml resolves prefixes to URIs; a production system would
	// track prefix bindings. For labelling purposes the resolved form is a
	// stable, unique name.
	return n.Space + ":" + n.Local
}

func xmlnsName(n xml.Name) string {
	if n.Space == "xmlns" {
		return "xmlns:" + n.Local
	}
	return "xmlns"
}
