// Package xmltree implements the ordered rooted tree representation of XML
// documents that every labelling scheme in this library is defined over
// (paper §2.1). The tree is the XPath data model's view of a document:
// internal nodes are elements, attributes are ordered before element
// children, and text leaves carry data values. Text, comment and
// processing-instruction nodes are retained for serialisation and for the
// encoding scheme (paper §2.3) but are not assigned labels: following the
// paper, "leaf nodes will always contain content values and not structural
// information and are thus considered by the XML encoding scheme and not
// the labelling scheme".
package xmltree

import (
	"errors"
	"fmt"
	"strings"
)

// Kind identifies the type of a tree node.
type Kind uint8

// Node kinds. Document is the virtual root that owns the root element;
// it is never labelled and never serialised.
const (
	KindDocument Kind = iota
	KindElement
	KindAttribute
	KindText
	KindComment
	KindProcInst
)

// String returns the XPath-style name of the node kind.
func (k Kind) String() string {
	switch k {
	case KindDocument:
		return "document"
	case KindElement:
		return "element"
	case KindAttribute:
		return "attribute"
	case KindText:
		return "text"
	case KindComment:
		return "comment"
	case KindProcInst:
		return "processing-instruction"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Errors reported by tree mutation.
var (
	ErrNotAttached     = errors.New("xmltree: node is not attached to a parent")
	ErrWrongKind       = errors.New("xmltree: operation not defined for this node kind")
	ErrCycle           = errors.New("xmltree: operation would create a cycle")
	ErrForeignNode     = errors.New("xmltree: reference node belongs to a different parent")
	ErrIndexOutOfRange = errors.New("xmltree: child index out of range")
)

// Node is a single node of the XML tree. The zero value is not useful;
// construct nodes with NewElement and friends or by parsing.
type Node struct {
	kind   Kind
	frozen bool   // immutable snapshot node (freeze.go); mutators refuse it
	name   string // element/attribute name, PI target
	value  string // attribute value, text/comment content, PI data
	parent *Node
	attrs  []*Node // attribute children, in document order (elements only)
	kids   []*Node // non-attribute children, in document order

	// Persistent-version bookkeeping (persist.go). birth is the version
	// sequence at which this node's state was last published. shadow
	// points from a live node to its up-to-date persistent counterpart
	// (nil while the node has unpublished changes). src points from a
	// version-view node to the persistent node it mirrors; expanded
	// (accessed atomically) marks a view node whose child shells have
	// been materialised.
	birth    uint64
	shadow   *Node
	src      *Node
	expanded uint32
}

// NewElement returns a detached element node.
func NewElement(name string) *Node { return &Node{kind: KindElement, name: name} }

// NewAttribute returns a detached attribute node.
func NewAttribute(name, value string) *Node {
	return &Node{kind: KindAttribute, name: name, value: value}
}

// NewText returns a detached text node.
func NewText(value string) *Node { return &Node{kind: KindText, value: value} }

// NewComment returns a detached comment node.
func NewComment(value string) *Node { return &Node{kind: KindComment, value: value} }

// NewProcInst returns a detached processing-instruction node.
func NewProcInst(target, data string) *Node {
	return &Node{kind: KindProcInst, name: target, value: data}
}

// Kind returns the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Name returns the element or attribute name (or PI target).
func (n *Node) Name() string { return n.name }

// SetName renames an element, attribute or processing instruction.
// Renaming is a content update in the paper's taxonomy (§3.1) and never
// affects labels. Panics on a frozen node (see freeze.go).
func (n *Node) SetName(name string) { n.mustThaw(); n.markChanged(); n.name = name }

// Value returns the node's own data value: attribute value, text content,
// comment text or PI data. Elements return "".
func (n *Node) Value() string { return n.value }

// SetValue updates the node's data value (content update). Panics on
// a frozen node (see freeze.go).
func (n *Node) SetValue(v string) { n.mustThaw(); n.markChanged(); n.value = v }

// Parent returns the parent node, or nil for a detached node or the
// document root.
func (n *Node) Parent() *Node { return n.parent }

// Attributes returns the attribute children in document order.
// The returned slice must not be mutated.
func (n *Node) Attributes() []*Node { return n.attributes() }

// Children returns the non-attribute children in document order.
// The returned slice must not be mutated.
func (n *Node) Children() []*Node { return n.children() }

// Text returns the concatenated text content of the node's direct text
// children (for elements) or the node's own value otherwise. This is the
// "Value" column of the paper's Figure 2 encoding table.
func (n *Node) Text() string {
	if n.kind != KindElement && n.kind != KindDocument {
		return n.value
	}
	var sb strings.Builder
	for _, c := range n.children() {
		if c.kind == KindText {
			sb.WriteString(c.value)
		}
	}
	return sb.String()
}

// DeepText returns the concatenated text content of the whole subtree.
func (n *Node) DeepText() string {
	var sb strings.Builder
	n.walkDeepText(&sb)
	return sb.String()
}

func (n *Node) walkDeepText(sb *strings.Builder) {
	if n.kind == KindText {
		sb.WriteString(n.value)
		return
	}
	for _, c := range n.children() {
		c.walkDeepText(sb)
	}
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.attributes() {
		if a.name == name {
			return a.value, true
		}
	}
	return "", false
}

// Depth returns the node's nesting depth: the root element has depth 0,
// matching the level component of the LSDX labels in the paper's Figure 5
// (root label "0a").
func (n *Node) Depth() int {
	d := 0
	for p := n.parent; p != nil && p.kind != KindDocument; p = p.parent {
		d++
	}
	return d
}

// Index returns the position of the node among its parent's children of
// the same class (attributes index among attributes, other kinds among
// non-attribute children). It returns -1 for detached nodes.
func (n *Node) Index() int {
	if n.parent == nil {
		return -1
	}
	list := n.parent.children()
	if n.kind == KindAttribute {
		list = n.parent.attributes()
	}
	for i, c := range list {
		if c == n {
			return i
		}
	}
	return -1
}

// PrevSibling returns the preceding non-attribute sibling, or nil.
func (n *Node) PrevSibling() *Node {
	if n.parent == nil || n.kind == KindAttribute {
		return nil
	}
	i := n.Index()
	if i <= 0 {
		return nil
	}
	return n.parent.children()[i-1]
}

// NextSibling returns the following non-attribute sibling, or nil.
func (n *Node) NextSibling() *Node {
	if n.parent == nil || n.kind == KindAttribute {
		return nil
	}
	i := n.Index()
	kids := n.parent.children()
	if i < 0 || i+1 >= len(kids) {
		return nil
	}
	return kids[i+1]
}

// FirstChild returns the first non-attribute child, or nil.
func (n *Node) FirstChild() *Node {
	kids := n.children()
	if len(kids) == 0 {
		return nil
	}
	return kids[0]
}

// LastChild returns the last non-attribute child, or nil.
func (n *Node) LastChild() *Node {
	kids := n.children()
	if len(kids) == 0 {
		return nil
	}
	return kids[len(kids)-1]
}

// IsAncestorOf reports whether n is a proper ancestor of d, computed from
// parent pointers. Labelling schemes answer the same question from labels
// alone; the tree answer is the ground truth the framework probes compare
// against.
func (n *Node) IsAncestorOf(d *Node) bool {
	for p := d.parent; p != nil; p = p.parent {
		if p == n {
			return true
		}
	}
	return false
}

// Root returns the topmost ancestor of n (the document node for attached
// nodes of a parsed document).
func (n *Node) Root() *Node {
	r := n
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// --- mutation -------------------------------------------------------------

func (n *Node) canContain(c *Node) error {
	switch n.kind {
	case KindElement:
	case KindDocument:
		if c.kind == KindAttribute || c.kind == KindText {
			return fmt.Errorf("%w: document cannot contain %v", ErrWrongKind, c.kind)
		}
	default:
		return fmt.Errorf("%w: %v cannot contain children", ErrWrongKind, n.kind)
	}
	if c.kind == KindDocument {
		return fmt.Errorf("%w: document node cannot be a child", ErrWrongKind)
	}
	if c == n || c.IsAncestorOf(n) {
		return ErrCycle
	}
	return nil
}

// SetAttr sets (or replaces) an attribute value and returns the attribute
// node. New attributes are appended after existing ones.
func (n *Node) SetAttr(name, value string) (*Node, error) {
	if n.frozen {
		return nil, ErrFrozen
	}
	if n.kind != KindElement {
		return nil, fmt.Errorf("%w: attributes on %v", ErrWrongKind, n.kind)
	}
	for _, a := range n.attrs {
		if a.name == name {
			a.markChanged()
			a.value = value
			return a, nil
		}
	}
	a := NewAttribute(name, value)
	a.parent = n
	n.markChanged()
	n.attrs = append(n.attrs, a)
	return a, nil
}

// AppendAttr appends an attribute node, preserving insertion order.
func (n *Node) AppendAttr(a *Node) error {
	if n.frozen || a.frozen {
		return ErrFrozen
	}
	if n.kind != KindElement {
		return fmt.Errorf("%w: attributes on %v", ErrWrongKind, n.kind)
	}
	if a.kind != KindAttribute {
		return fmt.Errorf("%w: AppendAttr of %v", ErrWrongKind, a.kind)
	}
	if a.parent != nil {
		a.Detach()
	}
	a.parent = n
	n.markChanged()
	n.attrs = append(n.attrs, a)
	return nil
}

// InsertAttrAt inserts a as the i-th attribute of n (clamped to the
// list bounds), preserving the order of the others.
func (n *Node) InsertAttrAt(i int, a *Node) error {
	if n.frozen || a.frozen {
		return ErrFrozen
	}
	if n.kind != KindElement {
		return fmt.Errorf("%w: attributes on %v", ErrWrongKind, n.kind)
	}
	if a.kind != KindAttribute {
		return fmt.Errorf("%w: InsertAttrAt of %v", ErrWrongKind, a.kind)
	}
	if i < 0 {
		i = 0
	}
	if i > len(n.attrs) {
		i = len(n.attrs)
	}
	if a.parent != nil {
		// Moving an attribute within the same element: its detach
		// shifts everything after it left by one, so adjust the
		// target index or the splice below would run past the list.
		if a.parent == n {
			if idx := a.Index(); idx >= 0 && idx < i {
				i--
			}
		}
		a.Detach()
	}
	a.parent = n
	n.markChanged()
	n.attrs = append(n.attrs, nil)
	copy(n.attrs[i+1:], n.attrs[i:])
	n.attrs[i] = a
	return nil
}

// RemoveAttr removes the named attribute, reporting whether it existed.
// Panics on a frozen node (see freeze.go).
func (n *Node) RemoveAttr(name string) bool {
	n.mustThaw()
	for i, a := range n.attrs {
		if a.name == name {
			n.markChanged()
			n.attrs = append(n.attrs[:i], n.attrs[i+1:]...)
			a.parent = nil
			return true
		}
	}
	return false
}

// InsertChildAt inserts c as the i-th non-attribute child of n.
func (n *Node) InsertChildAt(i int, c *Node) error {
	if n.frozen || c.frozen {
		return ErrFrozen
	}
	if err := n.canContain(c); err != nil {
		return err
	}
	if c.kind == KindAttribute {
		return fmt.Errorf("%w: attribute inserted as child", ErrWrongKind)
	}
	if i < 0 || i > len(n.kids) {
		return ErrIndexOutOfRange
	}
	if c.parent != nil {
		// Moving a child within the same parent: its detach shifts
		// everything after it left by one, so adjust the target index
		// or the splice below would run past the list (AppendChild of
		// an existing last child hit exactly this).
		if c.parent == n {
			if idx := c.Index(); idx >= 0 && idx < i {
				i--
			}
		}
		c.Detach()
	}
	c.parent = n
	n.markChanged()
	n.kids = append(n.kids, nil)
	copy(n.kids[i+1:], n.kids[i:])
	n.kids[i] = c
	return nil
}

// AppendChild appends c as the last non-attribute child of n.
func (n *Node) AppendChild(c *Node) error { return n.InsertChildAt(len(n.kids), c) }

// PrependChild inserts c as the first non-attribute child of n.
func (n *Node) PrependChild(c *Node) error { return n.InsertChildAt(0, c) }

// InsertBefore inserts c as the immediately preceding sibling of ref,
// which must be an attached non-attribute child of n's future parent.
func InsertBefore(ref, c *Node) error {
	p := ref.parent
	if p == nil {
		return ErrNotAttached
	}
	i := ref.Index()
	if i < 0 {
		return ErrForeignNode
	}
	return p.InsertChildAt(i, c)
}

// InsertAfter inserts c as the immediately following sibling of ref.
func InsertAfter(ref, c *Node) error {
	p := ref.parent
	if p == nil {
		return ErrNotAttached
	}
	i := ref.Index()
	if i < 0 {
		return ErrForeignNode
	}
	return p.InsertChildAt(i+1, c)
}

// Detach removes n from its parent, leaving n (and its subtree) intact.
// Detaching an already detached node is a no-op. Panics on a frozen
// node (see freeze.go).
func (n *Node) Detach() {
	n.mustThaw()
	p := n.parent
	if p == nil {
		return
	}
	// The detached subtree keeps its own shadows: its content is
	// unchanged, so a later re-graft (move) still shares it with prior
	// versions. Only the old parent's spine is invalidated.
	p.markChanged()
	if n.kind == KindAttribute {
		for i, a := range p.attrs {
			if a == n {
				p.attrs = append(p.attrs[:i], p.attrs[i+1:]...)
				break
			}
		}
	} else {
		for i, c := range p.kids {
			if c == n {
				p.kids = append(p.kids[:i], p.kids[i+1:]...)
				break
			}
		}
	}
	n.parent = nil
}

// Clone returns a deep copy of the subtree rooted at n. The copy is
// detached and always mutable: frozenness is a property of the
// original snapshot, never of a copy (freeze.go).
func (n *Node) Clone() *Node {
	c := &Node{kind: n.kind, name: n.name, value: n.value}
	for _, a := range n.attributes() {
		ac := a.Clone()
		ac.parent = c
		c.attrs = append(c.attrs, ac)
	}
	for _, k := range n.children() {
		kc := k.Clone()
		kc.parent = c
		c.kids = append(c.kids, kc)
	}
	return c
}

// Validate checks structural invariants of the subtree rooted at n:
// parent pointers are consistent, no node appears twice, and containment
// rules hold. It is used by tests and by failure-injection probes.
func (n *Node) Validate() error {
	seen := make(map[*Node]bool)
	return n.validate(seen)
}

func (n *Node) validate(seen map[*Node]bool) error {
	if seen[n] {
		return fmt.Errorf("xmltree: node %q appears twice", n.name)
	}
	seen[n] = true
	for _, a := range n.attributes() {
		if a.kind != KindAttribute {
			return fmt.Errorf("xmltree: non-attribute %v in attribute list of %q", a.kind, n.name)
		}
		if a.parent != n {
			return fmt.Errorf("xmltree: attribute %q has wrong parent", a.name)
		}
		if err := a.validate(seen); err != nil {
			return err
		}
	}
	for _, c := range n.children() {
		if c.kind == KindAttribute {
			return fmt.Errorf("xmltree: attribute %q in child list of %q", c.name, n.name)
		}
		if c.parent != n {
			return fmt.Errorf("xmltree: child %q has wrong parent", c.name)
		}
		if err := n.canContain(c); err != nil && !errors.Is(err, ErrCycle) {
			return err
		}
		if err := c.validate(seen); err != nil {
			return err
		}
	}
	return nil
}
