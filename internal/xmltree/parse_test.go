package xmltree

import (
	"strings"
	"testing"
)

func TestParseSampleBook(t *testing.T) {
	doc, err := ParseString(SampleBookXML)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root().Name() != "book" {
		t.Fatalf("root: %q", doc.Root().Name())
	}
	if got := doc.LabelledCount(); got != 10 {
		t.Fatalf("labelled count = %d, want 10", got)
	}
	title := doc.FindElement("title")
	if v, ok := title.Attr("genre"); !ok || v != "Fantasy" {
		t.Fatalf("genre attr: %q %v", v, ok)
	}
	if title.Text() != "Wayfarer" {
		t.Fatalf("title text: %q", title.Text())
	}
	// Parsed document must match the programmatic one structurally.
	built := SampleBook()
	if doc.XML() != built.XML() {
		t.Fatalf("parsed != built:\n%s\n%s", doc.XML(), built.XML())
	}
}

func TestParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		doc := Generate(GenOptions{Seed: seed, MaxDepth: 5, MaxChildren: 5, AttrProb: 0.4, TextProb: 0.5})
		text := doc.XML()
		re, err := ParseString(text)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if re.XML() != text {
			t.Fatalf("seed %d: round trip mismatch\n%s\n%s", seed, text, re.XML())
		}
	}
}

func TestParseEscapes(t *testing.T) {
	in := `<a b="x&amp;y&quot;z">1 &lt; 2 &amp; 3 &gt; 2</a>`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root().Attr("b"); v != `x&y"z` {
		t.Fatalf("attr value: %q", v)
	}
	if got := doc.Root().Text(); got != "1 < 2 & 3 > 2" {
		t.Fatalf("text: %q", got)
	}
	// Round trip preserves escaping.
	re, err := ParseString(doc.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.Root().Text() != doc.Root().Text() {
		t.Fatal("escape round trip")
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	in := `<?xml version="1.0"?><!-- top --><r><!-- inner --><?php echo ?><x/></r>`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	kids := doc.Root().Children()
	if len(kids) != 3 {
		t.Fatalf("children: %d", len(kids))
	}
	if kids[0].Kind() != KindComment || kids[0].Value() != " inner " {
		t.Fatalf("comment: %v %q", kids[0].Kind(), kids[0].Value())
	}
	if kids[1].Kind() != KindProcInst || kids[1].Name() != "php" {
		t.Fatalf("pi: %v %q", kids[1].Kind(), kids[1].Name())
	}
	// Comments and PIs are not labelled.
	if doc.LabelledCount() != 2 {
		t.Fatalf("labelled: %d", doc.LabelledCount())
	}

	drop, err := ParseWithOptions(strings.NewReader(in), ParseOptions{DropComments: true, DropProcInsts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(drop.Root().Children()) != 1 {
		t.Fatalf("drop options: %d children", len(drop.Root().Children()))
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	in := "<r>\n  <a/>\n</r>"
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Root().Children()) != 1 {
		t.Fatalf("whitespace text kept: %d children", len(doc.Root().Children()))
	}
	keep, err := ParseWithOptions(strings.NewReader(in), ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(keep.Root().Children()) != 3 {
		t.Fatalf("whitespace text dropped: %d children", len(keep.Root().Children()))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",               // no root
		"<a><b></a>",     // mismatched tags
		"<a></a><b></b>", // multiple roots
		"<a>",            // unexpected EOF
		"text only",      // no element
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestParseNamespaceDecls(t *testing.T) {
	in := `<r xmlns:p="urn:x"><p:a/></r>`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Root().Attr("xmlns:p"); !ok {
		t.Fatalf("xmlns decl lost: %s", doc.XML())
	}
	// The child's name is resolved to its URI-qualified form.
	if doc.Root().Children()[0].Name() != "urn:x:a" {
		t.Fatalf("resolved name: %q", doc.Root().Children()[0].Name())
	}
}

func TestSerializeIndent(t *testing.T) {
	doc := SampleBook()
	out := doc.IndentedXML()
	if !strings.Contains(out, "\n  <title") {
		t.Fatalf("indent missing:\n%s", out)
	}
	// Indented output still parses to the same tree.
	re, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if re.XML() != doc.XML() {
		t.Fatal("indented round trip changed the tree")
	}
}

func TestSerializeEmptyElement(t *testing.T) {
	doc, _ := NewDocumentWithRoot(NewElement("lone"))
	if doc.XML() != "<lone/>" {
		t.Fatalf("empty element: %q", doc.XML())
	}
}

func TestOuterXML(t *testing.T) {
	doc := SampleBook()
	ed := doc.FindElement("editor")
	out := OuterXML(ed)
	if !strings.HasPrefix(out, "<editor>") || !strings.Contains(out, "<name>Destiny Image</name>") {
		t.Fatalf("outer xml: %s", out)
	}
}
