package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFigure1PrePostRanks verifies that our traversal reproduces the
// paper's Figure 1(b)/Figure 2 pre/post ranks for the sample document
// exactly.
func TestFigure1PrePostRanks(t *testing.T) {
	doc := SampleBook()
	pre := doc.PreRank()
	post := doc.PostRank()

	type want struct {
		name      string
		pre, post int
	}
	wants := []want{
		{"book", 0, 9},
		{"title", 1, 1},
		{"genre", 2, 0},
		{"author", 3, 2},
		{"publisher", 4, 8},
		{"editor", 5, 5},
		{"name", 6, 3},
		{"address", 7, 4},
		{"edition", 8, 7},
		{"year", 9, 6},
	}
	byName := map[string]*Node{}
	doc.WalkLabelled(func(n *Node) bool { byName[n.Name()] = n; return true })
	for _, w := range wants {
		n := byName[w.name]
		if n == nil {
			t.Fatalf("node %q missing", w.name)
		}
		if pre[n] != w.pre || post[n] != w.post {
			t.Errorf("%s: got (%d,%d), want (%d,%d)", w.name, pre[n], post[n], w.pre, w.post)
		}
	}
}

func TestWalkLabelledOrderAndEarlyStop(t *testing.T) {
	doc := SampleBook()
	var names []string
	doc.WalkLabelled(func(n *Node) bool {
		names = append(names, n.Name())
		return len(names) < 3
	})
	if len(names) != 3 || names[0] != "book" || names[1] != "title" || names[2] != "genre" {
		t.Fatalf("early stop walk: %v", names)
	}
	all := doc.LabelledNodes()
	if len(all) != 10 {
		t.Fatalf("labelled nodes: %d", len(all))
	}
}

func TestLabelledChildren(t *testing.T) {
	doc := SampleBook()
	title := doc.FindElement("title")
	kids := LabelledChildren(title)
	if len(kids) != 1 || kids[0].Name() != "genre" {
		t.Fatalf("title labelled children: %v", kids)
	}
	book := doc.Root()
	kids = LabelledChildren(book)
	if len(kids) != 3 {
		t.Fatalf("book labelled children: %d", len(kids))
	}
	edition := doc.FindElement("edition")
	kids = LabelledChildren(edition)
	if len(kids) != 1 || kids[0].Name() != "year" {
		t.Fatalf("edition children: %v", kids)
	}
	if LabelledParent(book) != nil {
		t.Fatal("root has no labelled parent")
	}
	if LabelledParent(title) != book {
		t.Fatal("title parent")
	}
}

// TestDocOrderCompareMatchesPreorder checks the structural comparator
// against preorder ranks on random documents.
func TestDocOrderCompareMatchesPreorder(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		doc := Generate(GenOptions{Seed: seed, MaxDepth: 4, MaxChildren: 5, AttrProb: 0.4, TextProb: 0.3})
		nodes := doc.LabelledNodes()
		pre := doc.PreRank()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			got := DocOrderCompare(a, b)
			want := sign(pre[a] - pre[b])
			if got != want {
				t.Fatalf("seed %d: DocOrderCompare(%s,%s)=%d, want %d", seed, a.Name(), b.Name(), got, want)
			}
		}
	}
}

func TestDocOrderAncestorPrecedesDescendant(t *testing.T) {
	doc := SampleBook()
	book := doc.Root()
	name := doc.FindElement("name")
	if DocOrderCompare(book, name) != -1 || DocOrderCompare(name, book) != 1 {
		t.Fatal("ancestor must precede descendant")
	}
	if DocOrderCompare(book, book) != 0 {
		t.Fatal("self comparison must be 0")
	}
}

func TestPostRankProperty(t *testing.T) {
	// Property: for any two labellable nodes, a is an ancestor of d iff
	// pre(a) < pre(d) and post(a) > post(d) (Dietz, paper §3.1.1).
	f := func(seed int64) bool {
		doc := Generate(GenOptions{Seed: seed % 1000, MaxDepth: 5, MaxChildren: 4, AttrProb: 0.3})
		pre := doc.PreRank()
		post := doc.PostRank()
		nodes := doc.LabelledNodes()
		for _, a := range nodes {
			for _, d := range nodes {
				if a == d {
					continue
				}
				dietz := pre[a] < pre[d] && post[a] > post[d]
				if dietz != a.IsAncestorOf(d) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
