package xmltree

// Tree traversal (paper §3.1.1). Parsing an XML document in document order
// corresponds to a preorder traversal; postorder ranks are assigned after a
// node's children have been visited. Labellable nodes are elements and
// attributes, with an element's attributes visited before its non-attribute
// children — this ordering reproduces the pre/post ranks of the paper's
// Figures 1(b) and 2 exactly.

// WalkLabelled visits every labellable node (elements and attributes) of
// the document in document (preorder) order. The visit function returns
// false to stop the walk early.
func (d *Document) WalkLabelled(visit func(*Node) bool) {
	walkLabelled(d.node, visit)
}

func walkLabelled(n *Node, visit func(*Node) bool) bool {
	if n.kind == KindElement || n.kind == KindAttribute {
		if !visit(n) {
			return false
		}
	}
	for _, a := range n.attributes() {
		if !walkLabelled(a, visit) {
			return false
		}
	}
	for _, c := range n.children() {
		if !walkLabelled(c, visit) {
			return false
		}
	}
	return true
}

// LabelledNodes returns all labellable nodes in document order.
func (d *Document) LabelledNodes() []*Node {
	var out []*Node
	d.WalkLabelled(func(n *Node) bool { out = append(out, n); return true })
	return out
}

// LabelledChildren returns the labellable children of n in document order:
// attributes first, then element children. This is the sibling list over
// which prefix schemes assign positional identifiers.
func LabelledChildren(n *Node) []*Node {
	attrs, kids := n.attributes(), n.children()
	out := make([]*Node, 0, len(attrs)+len(kids))
	out = append(out, attrs...)
	for _, c := range kids {
		if c.kind == KindElement {
			out = append(out, c)
		}
	}
	return out
}

// LabelledParent returns the nearest labellable ancestor of n (its element
// parent), or nil for the root element.
func LabelledParent(n *Node) *Node {
	p := n.parent
	if p == nil || p.kind == KindDocument {
		return nil
	}
	return p
}

// PreRank computes the preorder traversal rank of every labellable node,
// starting at 0 at the root element (Figure 1(b)).
func (d *Document) PreRank() map[*Node]int {
	ranks := make(map[*Node]int)
	i := 0
	d.WalkLabelled(func(n *Node) bool {
		ranks[n] = i
		i++
		return true
	})
	return ranks
}

// PostRank computes the postorder traversal rank of every labellable node:
// a node is ranked after all its labellable children (Figure 1(b)).
func (d *Document) PostRank() map[*Node]int {
	ranks := make(map[*Node]int)
	i := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, a := range n.attributes() {
			walk(a)
		}
		for _, c := range n.children() {
			walk(c)
		}
		if n.kind == KindElement || n.kind == KindAttribute {
			ranks[n] = i
			i++
		}
	}
	walk(d.node)
	return ranks
}

// DocOrderCompare returns -1, 0 or +1 according to the document order of
// two attached nodes, computed structurally (the ground truth that label
// comparisons are probed against).
func DocOrderCompare(a, b *Node) int {
	if a == b {
		return 0
	}
	pa := pathTo(a)
	pb := pathTo(b)
	i := 0
	for i < len(pa) && i < len(pb) && pa[i] == pb[i] {
		i++
	}
	switch {
	case i == len(pa):
		return -1 // a is an ancestor of b: ancestors precede descendants
	case i == len(pb):
		return 1
	default:
		ca, cb := pa[i], pb[i]
		p := ca.parent
		// Attributes precede non-attribute children of the same parent.
		aAttr := ca.kind == KindAttribute
		bAttr := cb.kind == KindAttribute
		if aAttr != bAttr {
			if aAttr {
				return -1
			}
			return 1
		}
		list := p.children()
		if aAttr {
			list = p.attributes()
		}
		for _, c := range list {
			if c == ca {
				return -1
			}
			if c == cb {
				return 1
			}
		}
		return 0 // unreachable for a valid tree
	}
}

// pathTo returns the chain of nodes from the root down to n, inclusive.
func pathTo(n *Node) []*Node {
	var rev []*Node
	for x := n; x != nil; x = x.parent {
		rev = append(rev, x)
	}
	out := make([]*Node, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}
