package xmltree

import (
	"fmt"
	"io"
	"strings"
)

// SerializeOptions controls textual XML output.
type SerializeOptions struct {
	// Indent, when non-empty, pretty-prints with the given unit (e.g.
	// "  "). Text-bearing elements are kept on one line.
	Indent string
}

// WriteXML serialises the document as textual XML. The encoding scheme
// definition (paper Definition 2) requires that the full textual document
// be reconstructible from the tree; this is the reconstruction path.
func (d *Document) WriteXML(w io.Writer, opt SerializeOptions) error {
	for _, c := range d.node.children() {
		if err := writeNode(w, c, opt, 0); err != nil {
			return err
		}
		if opt.Indent != "" {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// XML returns the serialised document as a string.
func (d *Document) XML() string {
	var sb strings.Builder
	_ = d.WriteXML(&sb, SerializeOptions{})
	return sb.String()
}

// IndentedXML returns the document pretty-printed with two-space indents.
func (d *Document) IndentedXML() string {
	var sb strings.Builder
	_ = d.WriteXML(&sb, SerializeOptions{Indent: "  "})
	return sb.String()
}

// OuterXML serialises the subtree rooted at n.
func OuterXML(n *Node) string {
	var sb strings.Builder
	_ = writeNode(&sb, n, SerializeOptions{}, 0)
	return sb.String()
}

func writeNode(w io.Writer, n *Node, opt SerializeOptions, depth int) error {
	ind := ""
	nl := ""
	if opt.Indent != "" {
		ind = strings.Repeat(opt.Indent, depth)
		nl = "\n"
	}
	switch n.kind {
	case KindText:
		_, err := io.WriteString(w, escapeText(n.value))
		return err
	case KindComment:
		_, err := fmt.Fprintf(w, "%s<!--%s-->", ind, n.value)
		return err
	case KindProcInst:
		_, err := fmt.Fprintf(w, "%s<?%s %s?>", ind, n.name, n.value)
		return err
	case KindAttribute:
		_, err := fmt.Fprintf(w, ` %s="%s"`, n.name, escapeAttr(n.value))
		return err
	case KindElement:
		if _, err := fmt.Fprintf(w, "%s<%s", ind, n.name); err != nil {
			return err
		}
		for _, a := range n.attributes() {
			if err := writeNode(w, a, opt, depth); err != nil {
				return err
			}
		}
		kids := n.children()
		if len(kids) == 0 {
			_, err := io.WriteString(w, "/>")
			return err
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		inline := opt.Indent == "" || textOnly(n)
		for _, c := range kids {
			if !inline {
				if _, err := io.WriteString(w, nl); err != nil {
					return err
				}
				if err := writeNode(w, c, opt, depth+1); err != nil {
					return err
				}
			} else {
				if err := writeNode(w, c, SerializeOptions{}, 0); err != nil {
					return err
				}
			}
		}
		if !inline {
			if _, err := fmt.Fprintf(w, "%s%s", nl, ind); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "</%s>", n.name)
		return err
	default:
		return fmt.Errorf("xmltree: cannot serialise %v node", n.kind)
	}
}

func textOnly(n *Node) bool {
	for _, c := range n.children() {
		if c.kind != KindText {
			return false
		}
	}
	return true
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "\n", "&#10;", "\t", "&#9;",
)

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
