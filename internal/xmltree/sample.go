package xmltree

// The paper's worked examples. SampleBook is the document of Figure 1(a);
// ExampleTree is the abstract ten-node tree labelled in Figures 3-6.

// SampleBookXML is the textual form of the paper's Figure 1(a).
const SampleBookXML = `<book>
  <title genre="Fantasy">Wayfarer</title>
  <author>Matthew Dickens</author>
  <publisher>
    <editor>
      <name>Destiny Image</name>
      <address>USA</address>
    </editor>
    <edition year="2004">1.0</edition>
  </publisher>
</book>`

// SampleBook builds the paper's sample document (Figure 1(a))
// programmatically. Its ten labellable nodes receive the pre/post ranks of
// Figure 1(b): book(0,9) title(1,1) genre(2,0) author(3,2) publisher(4,8)
// editor(5,5) name(6,3) address(7,4) edition(8,7) year(9,6).
func SampleBook() *Document {
	doc := NewDocument()
	book := NewElement("book")
	_ = doc.SetRoot(book)

	title := NewElement("title")
	_, _ = title.SetAttr("genre", "Fantasy")
	_ = title.AppendChild(NewText("Wayfarer"))
	_ = book.AppendChild(title)

	author := NewElement("author")
	_ = author.AppendChild(NewText("Matthew Dickens"))
	_ = book.AppendChild(author)

	publisher := NewElement("publisher")
	_ = book.AppendChild(publisher)

	editor := NewElement("editor")
	_ = publisher.AppendChild(editor)
	name := NewElement("name")
	_ = name.AppendChild(NewText("Destiny Image"))
	_ = editor.AppendChild(name)
	address := NewElement("address")
	_ = address.AppendChild(NewText("USA"))
	_ = editor.AppendChild(address)

	edition := NewElement("edition")
	_, _ = edition.SetAttr("year", "2004")
	_ = edition.AppendChild(NewText("1.0"))
	_ = publisher.AppendChild(edition)

	return doc
}

// ExampleTree builds the abstract ten-node tree of Figures 3-6: a root
// with three children A, B, C where A has two children, B one and C three.
// Under DeweyID (Figure 3) the nodes read 1; 1.1, 1.2, 1.3; 1.1.1, 1.1.2;
// 1.2.1; 1.3.1, 1.3.2, 1.3.3.
func ExampleTree() *Document {
	doc := NewDocument()
	r := NewElement("r")
	_ = doc.SetRoot(r)
	a := NewElement("a")
	b := NewElement("b")
	c := NewElement("c")
	_ = r.AppendChild(a)
	_ = r.AppendChild(b)
	_ = r.AppendChild(c)
	_ = a.AppendChild(NewElement("a1"))
	_ = a.AppendChild(NewElement("a2"))
	_ = b.AppendChild(NewElement("b1"))
	_ = c.AppendChild(NewElement("c1"))
	_ = c.AppendChild(NewElement("c2"))
	_ = c.AppendChild(NewElement("c3"))
	return doc
}

// FindElement returns the first element with the given name in document
// order, or nil.
func (d *Document) FindElement(name string) *Node {
	var found *Node
	d.WalkLabelled(func(n *Node) bool {
		if n.Kind() == KindElement && n.Name() == name {
			found = n
			return false
		}
		return true
	})
	return found
}
