package xmltree

import (
	"errors"
	"testing"
)

// frozenDoc parses a small document and freezes it.
func frozenDoc(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseString(`<a x="1"><b>text</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	doc.Freeze()
	return doc
}

func TestFreezeMarksWholeSubtree(t *testing.T) {
	doc := frozenDoc(t)
	if !doc.Frozen() {
		t.Fatal("document not frozen")
	}
	var walked int
	var walk func(n *Node)
	walk = func(n *Node) {
		walked++
		if !n.Frozen() {
			t.Errorf("node %q (%v) not frozen", n.Name(), n.Kind())
		}
		for _, a := range n.Attributes() {
			walk(a)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(doc.Node())
	if walked < 5 {
		t.Fatalf("walked only %d nodes", walked)
	}
}

func TestFrozenErrorMutatorsReturnErrFrozen(t *testing.T) {
	doc := frozenDoc(t)
	root := doc.Root()
	b := root.FirstChild()
	if _, err := root.SetAttr("y", "2"); !errors.Is(err, ErrFrozen) {
		t.Errorf("SetAttr: %v", err)
	}
	if err := root.AppendAttr(NewAttribute("y", "2")); !errors.Is(err, ErrFrozen) {
		t.Errorf("AppendAttr: %v", err)
	}
	if err := root.InsertAttrAt(0, NewAttribute("y", "2")); !errors.Is(err, ErrFrozen) {
		t.Errorf("InsertAttrAt: %v", err)
	}
	if err := root.AppendChild(NewElement("d")); !errors.Is(err, ErrFrozen) {
		t.Errorf("AppendChild: %v", err)
	}
	if err := root.PrependChild(NewElement("d")); !errors.Is(err, ErrFrozen) {
		t.Errorf("PrependChild: %v", err)
	}
	if err := InsertBefore(b, NewElement("d")); !errors.Is(err, ErrFrozen) {
		t.Errorf("InsertBefore: %v", err)
	}
	if err := InsertAfter(b, NewElement("d")); !errors.Is(err, ErrFrozen) {
		t.Errorf("InsertAfter: %v", err)
	}
	// A frozen subtree must not be graftable into a live tree either:
	// attaching would rewrite its parent pointer.
	live := NewElement("live")
	if err := live.AppendChild(b); !errors.Is(err, ErrFrozen) {
		t.Errorf("graft frozen child into live tree: %v", err)
	}
	// SetRoot is error-returning, so it must return ErrFrozen (not
	// panic via the old root's Detach) — and must check before
	// detaching anything.
	if err := doc.SetRoot(NewElement("z")); !errors.Is(err, ErrFrozen) {
		t.Errorf("SetRoot on frozen document: %v", err)
	}
	if doc.Root() == nil || doc.Root().Name() != "a" {
		t.Error("SetRoot on frozen document disturbed the tree")
	}
	liveDoc := NewDocument()
	if err := liveDoc.SetRoot(doc.Root()); !errors.Is(err, ErrFrozen) {
		t.Errorf("SetRoot with a frozen root into a live document: %v", err)
	}
}

func TestFrozenVoidMutatorsPanic(t *testing.T) {
	doc := frozenDoc(t)
	root := doc.Root()
	cases := map[string]func(){
		"SetName":    func() { root.SetName("z") },
		"SetValue":   func() { root.FirstChild().FirstChild().SetValue("z") },
		"Detach":     func() { root.FirstChild().Detach() },
		"RemoveAttr": func() { root.RemoveAttr("x") },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen node did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFrozenCloneIsMutable(t *testing.T) {
	doc := frozenDoc(t)
	c := doc.Root().Clone()
	if c.Frozen() {
		t.Fatal("clone of a frozen node is frozen")
	}
	if err := c.AppendChild(NewElement("d")); err != nil {
		t.Fatalf("mutating the clone: %v", err)
	}
	c.SetName("renamed")
	if doc.Root().Name() == "renamed" {
		t.Fatal("clone mutation leaked into the frozen original")
	}
	// Document-level clone too.
	dc := doc.Clone()
	if dc.Frozen() {
		t.Fatal("clone of a frozen document is frozen")
	}
	if err := dc.Root().AppendChild(NewElement("d")); err != nil {
		t.Fatalf("mutating the document clone: %v", err)
	}
}

func TestFrozenReadsStillWork(t *testing.T) {
	doc := frozenDoc(t)
	root := doc.Root()
	if got, _ := root.Attr("x"); got != "1" {
		t.Fatalf("Attr = %q", got)
	}
	if root.FirstChild().Text() != "text" {
		t.Fatalf("Text = %q", root.FirstChild().Text())
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("Validate on frozen doc: %v", err)
	}
	if doc.XML() == "" {
		t.Fatal("XML serialisation of frozen doc is empty")
	}
}
