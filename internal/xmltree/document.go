package xmltree

import "fmt"

// Document is the virtual root of an XML tree. It owns exactly one root
// element plus any top-level comments and processing instructions.
type Document struct {
	node *Node // KindDocument
}

// NewDocument returns an empty document.
func NewDocument() *Document {
	return &Document{node: &Node{kind: KindDocument}}
}

// NewDocumentWithRoot returns a document whose root element is root.
func NewDocumentWithRoot(root *Node) (*Document, error) {
	d := NewDocument()
	if err := d.SetRoot(root); err != nil {
		return nil, err
	}
	return d, nil
}

// Node returns the underlying document node.
func (d *Document) Node() *Node { return d.node }

// Root returns the root element, or nil for an empty document.
func (d *Document) Root() *Node {
	for _, c := range d.node.children() {
		if c.kind == KindElement {
			return c
		}
	}
	return nil
}

// SetRoot installs root as the document's root element, replacing any
// existing root element. It returns ErrFrozen on a frozen document or
// root — checked up front, before the old root is detached, so a
// frozen document is never half-mutated (and never trips the void
// mutators' panic; see freeze.go).
func (d *Document) SetRoot(root *Node) error {
	if d.node.frozen || root.frozen {
		return ErrFrozen
	}
	if root.Kind() != KindElement {
		return fmt.Errorf("%w: document root must be an element", ErrWrongKind)
	}
	if old := d.Root(); old != nil {
		old.Detach()
	}
	return d.node.AppendChild(root)
}

// LabelledCount returns the number of labellable nodes (elements and
// attributes) in the document. Text, comment and PI nodes do not receive
// labels (paper §3.1.1).
func (d *Document) LabelledCount() int {
	n := 0
	d.WalkLabelled(func(*Node) bool { n++; return true })
	return n
}

// NodeCount returns the total number of nodes of all kinds, excluding the
// document node itself.
func (d *Document) NodeCount() int {
	n := -1 // exclude document node
	var walk func(*Node)
	walk = func(x *Node) {
		n++
		for _, a := range x.attributes() {
			walk(a)
		}
		for _, c := range x.children() {
			walk(c)
		}
	}
	walk(d.node)
	return n
}

// MaxDepth returns the maximum element/attribute depth of the document
// (root element depth 0), or -1 for an empty document.
func (d *Document) MaxDepth() int {
	max := -1
	d.WalkLabelled(func(n *Node) bool {
		if dd := n.Depth(); dd > max {
			max = dd
		}
		return true
	})
	return max
}

// Validate checks the structural invariants of the whole tree.
func (d *Document) Validate() error {
	if err := d.node.Validate(); err != nil {
		return err
	}
	roots := 0
	for _, c := range d.node.children() {
		if c.kind == KindElement {
			roots++
		}
	}
	if roots > 1 {
		return fmt.Errorf("xmltree: document has %d root elements", roots)
	}
	return nil
}

// Clone returns a deep copy of the document.
func (d *Document) Clone() *Document {
	return &Document{node: d.node.Clone()}
}
