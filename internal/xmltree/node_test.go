package xmltree

import (
	"errors"
	"strings"
	"testing"
)

func TestNewNodes(t *testing.T) {
	e := NewElement("book")
	if e.Kind() != KindElement || e.Name() != "book" {
		t.Fatalf("element: got %v %q", e.Kind(), e.Name())
	}
	a := NewAttribute("genre", "Fantasy")
	if a.Kind() != KindAttribute || a.Value() != "Fantasy" {
		t.Fatalf("attribute: got %v %q", a.Kind(), a.Value())
	}
	tx := NewText("hi")
	if tx.Kind() != KindText || tx.Value() != "hi" {
		t.Fatalf("text: got %v %q", tx.Kind(), tx.Value())
	}
	c := NewComment("note")
	if c.Kind() != KindComment {
		t.Fatalf("comment kind: %v", c.Kind())
	}
	pi := NewProcInst("xslt", "href=x")
	if pi.Kind() != KindProcInst || pi.Name() != "xslt" {
		t.Fatalf("pi: %v %q", pi.Kind(), pi.Name())
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindDocument:  "document",
		KindElement:   "element",
		KindAttribute: "attribute",
		KindText:      "text",
		KindComment:   "comment",
		KindProcInst:  "processing-instruction",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string: %q", got)
	}
}

func TestAppendAndNavigate(t *testing.T) {
	root := NewElement("r")
	a := NewElement("a")
	b := NewElement("b")
	if err := root.AppendChild(a); err != nil {
		t.Fatal(err)
	}
	if err := root.AppendChild(b); err != nil {
		t.Fatal(err)
	}
	if root.FirstChild() != a || root.LastChild() != b {
		t.Fatal("first/last child wrong")
	}
	if a.NextSibling() != b || b.PrevSibling() != a {
		t.Fatal("sibling navigation wrong")
	}
	if a.PrevSibling() != nil || b.NextSibling() != nil {
		t.Fatal("end siblings should be nil")
	}
	if a.Index() != 0 || b.Index() != 1 {
		t.Fatalf("indices: %d %d", a.Index(), b.Index())
	}
	if a.Parent() != root {
		t.Fatal("parent wrong")
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	root := NewElement("r")
	b := NewElement("b")
	_ = root.AppendChild(b)
	a := NewElement("a")
	if err := InsertBefore(b, a); err != nil {
		t.Fatal(err)
	}
	c := NewElement("c")
	if err := InsertAfter(b, c); err != nil {
		t.Fatal(err)
	}
	names := childNames(root)
	if names != "a,b,c" {
		t.Fatalf("order: %s", names)
	}
	// Insert before a detached node fails.
	if err := InsertBefore(NewElement("x"), NewElement("y")); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("want ErrNotAttached, got %v", err)
	}
}

func TestInsertChildAtBounds(t *testing.T) {
	root := NewElement("r")
	if err := root.InsertChildAt(1, NewElement("x")); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("want ErrIndexOutOfRange, got %v", err)
	}
	if err := root.InsertChildAt(-1, NewElement("x")); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("want ErrIndexOutOfRange, got %v", err)
	}
	if err := root.InsertChildAt(0, NewElement("x")); err != nil {
		t.Fatal(err)
	}
}

func TestMoveReattaches(t *testing.T) {
	r1 := NewElement("r1")
	r2 := NewElement("r2")
	c := NewElement("c")
	_ = r1.AppendChild(c)
	if err := r2.AppendChild(c); err != nil {
		t.Fatal(err)
	}
	if len(r1.Children()) != 0 {
		t.Fatal("child not detached from old parent")
	}
	if c.Parent() != r2 {
		t.Fatal("child not attached to new parent")
	}
}

func TestCycleRejected(t *testing.T) {
	a := NewElement("a")
	b := NewElement("b")
	_ = a.AppendChild(b)
	if err := b.AppendChild(a); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if err := a.AppendChild(a); !errors.Is(err, ErrCycle) {
		t.Fatalf("self append: want ErrCycle, got %v", err)
	}
}

func TestKindRules(t *testing.T) {
	text := NewText("t")
	if err := text.AppendChild(NewElement("x")); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("text cannot contain children: %v", err)
	}
	el := NewElement("e")
	if err := el.AppendChild(NewAttribute("a", "v")); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("attribute as regular child: %v", err)
	}
	doc := NewDocument()
	if err := doc.Node().AppendChild(NewText("t")); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("document cannot contain text: %v", err)
	}
	if _, err := text.SetAttr("a", "v"); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("attributes on text: %v", err)
	}
}

func TestAttributes(t *testing.T) {
	e := NewElement("e")
	if _, err := e.SetAttr("a", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetAttr("b", "2"); err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Attr("a"); !ok || v != "1" {
		t.Fatalf("attr a: %q %v", v, ok)
	}
	// Setting an existing attribute replaces its value in place.
	if _, err := e.SetAttr("a", "9"); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Attr("a"); v != "9" {
		t.Fatalf("replaced attr: %q", v)
	}
	if len(e.Attributes()) != 2 {
		t.Fatalf("attr count: %d", len(e.Attributes()))
	}
	if !e.RemoveAttr("a") {
		t.Fatal("RemoveAttr existing")
	}
	if e.RemoveAttr("zz") {
		t.Fatal("RemoveAttr missing should be false")
	}
	if _, ok := e.Attr("a"); ok {
		t.Fatal("attr a should be gone")
	}
}

func TestAppendAttrNode(t *testing.T) {
	e := NewElement("e")
	a := NewAttribute("k", "v")
	if err := e.AppendAttr(a); err != nil {
		t.Fatal(err)
	}
	if a.Parent() != e {
		t.Fatal("attr parent")
	}
	if err := e.AppendAttr(NewElement("x")); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("append element as attr: %v", err)
	}
	// moving an attribute re-attaches it
	e2 := NewElement("e2")
	if err := e2.AppendAttr(a); err != nil {
		t.Fatal(err)
	}
	if len(e.Attributes()) != 0 || a.Parent() != e2 {
		t.Fatal("attribute move failed")
	}
}

func TestDetach(t *testing.T) {
	r := NewElement("r")
	c := NewElement("c")
	_ = r.AppendChild(c)
	c.Detach()
	if c.Parent() != nil || len(r.Children()) != 0 {
		t.Fatal("detach failed")
	}
	c.Detach() // no-op
	a := NewAttribute("x", "1")
	_ = r.AppendAttr(a)
	a.Detach()
	if len(r.Attributes()) != 0 {
		t.Fatal("attribute detach failed")
	}
}

func TestDepthAndAncestry(t *testing.T) {
	doc := SampleBook()
	book := doc.Root()
	name := doc.FindElement("name")
	if name == nil {
		t.Fatal("name not found")
	}
	if book.Depth() != 0 {
		t.Fatalf("root depth: %d", book.Depth())
	}
	if name.Depth() != 3 {
		t.Fatalf("name depth: %d", name.Depth())
	}
	if !book.IsAncestorOf(name) {
		t.Fatal("book should be ancestor of name")
	}
	if name.IsAncestorOf(book) {
		t.Fatal("name is not an ancestor of book")
	}
	if book.IsAncestorOf(book) {
		t.Fatal("ancestor is proper")
	}
	if name.Root() != doc.Node() {
		t.Fatal("Root should reach the document node")
	}
}

func TestTextHelpers(t *testing.T) {
	doc := SampleBook()
	title := doc.FindElement("title")
	if title.Text() != "Wayfarer" {
		t.Fatalf("title text: %q", title.Text())
	}
	editor := doc.FindElement("editor")
	if editor.Text() != "" {
		t.Fatalf("editor has no direct text: %q", editor.Text())
	}
	if got := editor.DeepText(); got != "Destiny ImageUSA" {
		t.Fatalf("editor deep text: %q", got)
	}
	attr := doc.FindElement("title").Attributes()[0]
	if attr.Text() != "Fantasy" {
		t.Fatalf("attr text: %q", attr.Text())
	}
}

func TestClone(t *testing.T) {
	doc := SampleBook()
	c := doc.Clone()
	if c.XML() != doc.XML() {
		t.Fatal("clone not equal")
	}
	// Mutating the clone leaves the original untouched.
	c.FindElement("title").SetName("headline")
	if doc.FindElement("headline") != nil {
		t.Fatal("clone mutation leaked")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	doc := SampleBook()
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a parent pointer and expect Validate to notice.
	title := doc.FindElement("title")
	title.parent = doc.FindElement("author")
	if err := doc.Validate(); err == nil {
		t.Fatal("expected validation error for corrupt parent pointer")
	}
}

func TestSetRootReplaces(t *testing.T) {
	doc := NewDocument()
	if err := doc.SetRoot(NewElement("a")); err != nil {
		t.Fatal(err)
	}
	if err := doc.SetRoot(NewElement("b")); err != nil {
		t.Fatal(err)
	}
	if doc.Root().Name() != "b" {
		t.Fatalf("root: %q", doc.Root().Name())
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := doc.SetRoot(NewText("t")); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("text root: %v", err)
	}
}

func TestCounts(t *testing.T) {
	doc := SampleBook()
	if got := doc.LabelledCount(); got != 10 {
		t.Fatalf("labelled count = %d, want 10", got)
	}
	// 10 labellable + 5 text nodes.
	if got := doc.NodeCount(); got != 15 {
		t.Fatalf("node count = %d, want 15", got)
	}
	if got := doc.MaxDepth(); got != 3 { // name/address/year depth
		t.Fatalf("max depth = %d, want 3", got)
	}
}

func childNames(n *Node) string {
	var names []string
	for _, c := range n.Children() {
		names = append(names, c.Name())
	}
	return strings.Join(names, ",")
}
