package xmltree

import "testing"

func TestGenerateDeterministic(t *testing.T) {
	opt := DefaultGenOptions()
	a := Generate(opt)
	b := Generate(opt)
	if a.XML() != b.XML() {
		t.Fatal("generator not deterministic for equal options")
	}
	opt.Seed = 2
	c := Generate(opt)
	if c.XML() == a.XML() {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestGenerateValidity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		doc := Generate(GenOptions{Seed: seed, MaxDepth: 5, MaxChildren: 6, AttrProb: 0.5, TextProb: 0.5})
		if err := doc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if doc.Root() == nil {
			t.Fatalf("seed %d: no root", seed)
		}
	}
}

func TestGenerateTargetNodes(t *testing.T) {
	doc := Generate(GenOptions{Seed: 7, MaxDepth: 30, MaxChildren: 10, AttrProb: 0.2, TargetNodes: 500})
	n := doc.LabelledCount()
	if n < 400 || n > 600 {
		t.Fatalf("target nodes: got %d, want ~500", n)
	}
}

func TestGenerateWide(t *testing.T) {
	doc := GenerateWide(100)
	if got := len(doc.Root().Children()); got != 100 {
		t.Fatalf("wide children: %d", got)
	}
	if doc.MaxDepth() != 1 {
		t.Fatalf("wide depth: %d", doc.MaxDepth())
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeep(t *testing.T) {
	doc := GenerateDeep(50)
	if doc.MaxDepth() != 49 {
		t.Fatalf("deep depth: %d", doc.MaxDepth())
	}
	if doc.LabelledCount() != 50 {
		t.Fatalf("deep count: %d", doc.LabelledCount())
	}
}

func TestGenerateBalanced(t *testing.T) {
	doc := GenerateBalanced(3, 3)
	// 1 + 3 + 9 + 27 = 40 nodes
	if got := doc.LabelledCount(); got != 40 {
		t.Fatalf("balanced count: %d, want 40", got)
	}
	if doc.MaxDepth() != 3 {
		t.Fatalf("balanced depth: %d", doc.MaxDepth())
	}
}

func TestExampleTreeShape(t *testing.T) {
	doc := ExampleTree()
	if doc.LabelledCount() != 10 {
		t.Fatalf("example tree nodes: %d", doc.LabelledCount())
	}
	r := doc.Root()
	if len(r.Children()) != 3 {
		t.Fatalf("root children: %d", len(r.Children()))
	}
	want := []int{2, 1, 3}
	for i, c := range r.Children() {
		if len(c.Children()) != want[i] {
			t.Fatalf("child %d fanout: %d, want %d", i, len(c.Children()), want[i])
		}
	}
}
