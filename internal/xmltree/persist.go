// Persistent structure-sharing versions: the path-copying machinery
// behind the repository's MVCC snapshots (docs/CONCURRENCY.md §7).
//
// Every live node carries a shadow pointer to its persistent
// counterpart in the last published version. Mutators invalidate the
// shadows on the path from the mutated node to the root (markChanged),
// so publication (PublishVersion) has to copy only that spine: every
// subtree whose root still has a valid shadow is shared, by pointer,
// with the previous version. A publication therefore allocates
// O(changed spine) nodes, not O(document).
//
// Persistent nodes are frozen and parentless — a subtree shared
// between two versions cannot have a per-version parent pointer. They
// support downward navigation and serialisation, but not the upward
// axes (Parent, Depth, Index, siblings, DocOrderCompare) that XPath
// evaluation needs. OpenVersion therefore wraps a version root in
// lazily materialised view nodes: frozen shells with correct parent
// pointers, built on first access and cached, so node identity within
// one version is stable no matter how many snapshots read it. A view
// node's parent is always materialised before the node itself exists,
// which keeps every upward walk allocation-free.
package xmltree

import (
	"sync"
	"sync/atomic"
)

// markChanged invalidates the persistent shadows on the path from n up
// to its root. Invariant: a nil shadow implies every ancestor's shadow
// is nil too (a node cannot change without its ancestors' child lists
// or subtree content changing), so the walk stops at the first
// already-invalid node. On a document that has never been published
// every mutation pays exactly one nil check here.
func (n *Node) markChanged() {
	for m := n; m != nil && m.shadow != nil; m = m.parent {
		m.shadow = nil
	}
}

// PublishVersion folds every change made since the previous publication
// into the document's persistent mirror and returns the new version
// root: a frozen, parentless tree in which all subtrees untouched since
// the last publication are shared, by pointer, with the version
// published then. Rebuilt nodes are stamped with the birth sequence
// seq. Publishing an unchanged document returns the previous version
// root unchanged, without allocating.
//
// PublishVersion mutates the live tree's bookkeeping fields (shadows
// and birth sequences), so it must be serialised with mutators and
// with other PublishVersion calls by the caller's locking; concurrent
// readers of the live tree are unaffected (they never read shadows).
func (d *Document) PublishVersion(seq uint64) *Node {
	return publishNode(d.node, seq)
}

func publishNode(n *Node, seq uint64) *Node {
	if n.shadow != nil {
		return n.shadow
	}
	p := &Node{kind: n.kind, frozen: true, name: n.name, value: n.value, birth: seq}
	if len(n.attrs) > 0 {
		p.attrs = make([]*Node, len(n.attrs))
		for i, a := range n.attrs {
			p.attrs[i] = publishNode(a, seq)
		}
	}
	if len(n.kids) > 0 {
		p.kids = make([]*Node, len(n.kids))
		for i, c := range n.kids {
			p.kids[i] = publishNode(c, seq)
		}
	}
	n.birth = seq
	n.shadow = p
	return p
}

// OpenVersion returns a read-only Document over a version root obtained
// from PublishVersion. The returned tree is frozen, navigable in both
// directions (view nodes carry real parent pointers) and safe for any
// number of concurrent readers with no lock held. View nodes are
// materialised lazily on first child/attribute access and cached, so
// repeated queries — and every snapshot pinning the same version — see
// the same *Node identities, and opening a version is O(1) regardless
// of document size.
func OpenVersion(version *Node) *Document {
	return &Document{node: newViewNode(version, nil)}
}

func newViewNode(src, parent *Node) *Node {
	return &Node{
		kind:   src.kind,
		frozen: true,
		name:   src.name,
		value:  src.value,
		parent: parent,
		birth:  src.birth,
		src:    src,
	}
}

// expandMu serialises first-time materialisation of view-node child
// lists. It is global rather than per-version: the critical section is
// a handful of shell allocations, each node expands at most once per
// version, and the expanded fast path (an atomic load) never takes it.
var expandMu sync.Mutex

// expand materialises the child and attribute shells of a view node.
// Publication order guarantees the source node is immutable by the time
// any reader can reach it, so expansion only needs to synchronise with
// other expansions: the atomic expanded flag is written after the child
// lists (release) and checked before reading them (acquire).
func (n *Node) expand() {
	if atomic.LoadUint32(&n.expanded) != 0 {
		return
	}
	expandMu.Lock()
	defer expandMu.Unlock()
	if atomic.LoadUint32(&n.expanded) != 0 {
		return
	}
	src := n.src
	if len(src.attrs) > 0 {
		attrs := make([]*Node, len(src.attrs))
		for i, a := range src.attrs {
			attrs[i] = newViewNode(a, n)
		}
		n.attrs = attrs
	}
	if len(src.kids) > 0 {
		kids := make([]*Node, len(src.kids))
		for i, c := range src.kids {
			kids[i] = newViewNode(c, n)
		}
		n.kids = kids
	}
	atomic.StoreUint32(&n.expanded, 1)
}

// children returns the non-attribute child list, materialising view
// shells on demand. Every in-package read of n.kids on a node that may
// be a version view goes through here; live and persistent nodes take
// the one-branch fast path.
func (n *Node) children() []*Node {
	if n.src != nil {
		n.expand()
	}
	return n.kids
}

// attributes is the attribute-list counterpart of children.
func (n *Node) attributes() []*Node {
	if n.src != nil {
		n.expand()
	}
	return n.attrs
}

// BirthSeq returns the version sequence at which the node's current
// state was last published, or 0 for a node that predates the first
// publication. Two versions share a subtree exactly when the subtree
// root's birth sequence predates the younger version — tests use this
// to assert structure sharing.
func (n *Node) BirthSeq() uint64 { return n.birth }
