package core

import (
	"errors"
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/workload"
	"xmldyn/internal/xmltree"
)

// ProbeConfig sizes the evaluation workloads.
type ProbeConfig struct {
	Seed       int64
	BaseNodes  int // persistence/orthogonality document size
	StormOps   int // random-storm length
	SkewedOps  int // fixed-position insertion count (§5.1 skewed)
	ZigzagOps  int // adversarial alternating insertions (overflow probe)
	XPathNodes int // document size for relationship sampling
}

// DefaultProbeConfig returns the standard probe sizes: large enough to
// trip every scheme's documented failure mode (QRS's ~52-step mantissa,
// ImprovedBinary's 255-bit length field) within a fast test run.
func DefaultProbeConfig() ProbeConfig {
	return ProbeConfig{
		Seed:       1,
		BaseNodes:  250,
		StormOps:   250,
		SkewedOps:  400,
		ZigzagOps:  120,
		XPathNodes: 60,
	}
}

func (c ProbeConfig) scaled(scale float64) ProbeConfig {
	if scale <= 0 || scale >= 1 {
		return c
	}
	s := func(v int) int {
		out := int(float64(v) * scale)
		if out < 8 {
			out = 8
		}
		return out
	}
	c.BaseNodes = s(c.BaseNodes)
	c.StormOps = s(c.StormOps)
	c.SkewedOps = s(c.SkewedOps)
	c.ZigzagOps = s(c.ZigzagOps)
	c.XPathNodes = s(c.XPathNodes)
	return c
}

// Report carries every measurement behind an Assessment so EXPERIMENTS
// can show the numbers, not just the grades.
type Report struct {
	Scheme string

	OrderPreserved bool
	OrderNote      string

	PersistenceChanged int   // pre-existing labels that changed value
	Relabeled          int64 // scheme-reported relabel count
	RelabelEvents      int64
	OverflowEvents     int64

	SupportsAD, SupportsPC, SupportsSib bool
	ADCorrect, PCCorrect, SibCorrect    bool
	LevelSupported, LevelCorrect        bool
	OrthogonalOK                        bool

	BulkMeanBits    float64
	RandomMeanBits  float64
	UniformMeanBits float64
	SkewedMeanBits  float64
	GrowthRatio     float64

	Divisions    int64
	MaxRecursion int
	TraitsSource string // "instrumented" or "declared"

	Notes []string
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// algebraProvider is implemented by labelings built over a code algebra.
type algebraProvider interface {
	Algebra() labels.Algebra
}

// Evaluate derives the measured Assessment for one scheme by running the
// framework probes. The returned Report carries the raw measurements.
func Evaluate(s SchemeUnderTest, cfg ProbeConfig) (Assessment, *Report, error) {
	cfg = cfg.scaled(s.Scale)
	rep := &Report{Scheme: s.Name, TraitsSource: "declared"}
	grades := make(map[Property]Compliance, len(AllProperties))

	if err := probePersistence(s, cfg, rep); err != nil {
		return Assessment{}, rep, fmt.Errorf("core: %s persistence probe: %w", s.Name, err)
	}
	if err := probeXPath(s, cfg, rep); err != nil {
		return Assessment{}, rep, fmt.Errorf("core: %s xpath probe: %w", s.Name, err)
	}
	if err := probeOverflow(s, cfg, rep); err != nil {
		return Assessment{}, rep, fmt.Errorf("core: %s overflow probe: %w", s.Name, err)
	}
	probeOrthogonal(s, cfg, rep)
	if err := probeCompact(s, cfg, rep); err != nil {
		return Assessment{}, rep, fmt.Errorf("core: %s compact probe: %w", s.Name, err)
	}
	applyDeclaredTraits(s, rep)

	// Persistent Labels: no existing label may move, and labels must be
	// dependable as identities (the LSDX uniqueness defect voids that).
	switch {
	case rep.PersistenceChanged == 0 && rep.Relabeled == 0 && s.UniqueLabels:
		grades[PersistentLabels] = Full
	default:
		grades[PersistentLabels] = None
	}

	// XPath Evaluations: F needs all three relationships from labels
	// alone; P needs at least ancestor-descendant.
	switch {
	case rep.ADCorrect && rep.PCCorrect && rep.SibCorrect:
		grades[XPathEvaluations] = Full
	case rep.ADCorrect:
		grades[XPathEvaluations] = Partial
	default:
		grades[XPathEvaluations] = None
	}

	if rep.LevelSupported && rep.LevelCorrect {
		grades[LevelEncoding] = Full
	} else {
		grades[LevelEncoding] = None
	}

	if rep.RelabelEvents == 0 && rep.OverflowEvents == 0 {
		grades[OverflowFree] = Full
	} else {
		grades[OverflowFree] = None
	}

	if rep.OrthogonalOK {
		grades[Orthogonal] = Full
	} else {
		grades[Orthogonal] = None
	}

	grades[CompactEncoding] = compactGrade(rep)

	if rep.Divisions == 0 {
		grades[DivisionFree] = Full
	} else {
		grades[DivisionFree] = None
	}
	if rep.MaxRecursion == 0 {
		grades[NonRecursiveInit] = Full
	} else {
		grades[NonRecursiveInit] = None
	}

	return Assessment{Scheme: s.Name, Order: s.Order, Encoding: s.Encoding, Grades: grades}, rep, nil
}

// compactGrade applies the thresholds DESIGN.md documents: Full for
// labels within ~10 bytes that at most double under the worst §5.1
// scenario; Partial within 18 bytes and 6x growth; None beyond.
func compactGrade(rep *Report) Compliance {
	switch {
	case rep.BulkMeanBits <= 80 && rep.GrowthRatio <= 2.0:
		return Full
	case rep.BulkMeanBits <= 144 && rep.GrowthRatio <= 6.0:
		return Partial
	default:
		return None
	}
}

// --- persistence -------------------------------------------------------------

func probePersistence(s SchemeUnderTest, cfg ProbeConfig, rep *Report) error {
	doc := workload.BaseDocument(cfg.Seed, cfg.BaseNodes)
	sess, err := update.NewSession(doc, s.Factory())
	if err != nil {
		return err
	}
	lab := sess.Labeling()
	before := labeling.Snapshot(lab, doc)
	if _, err := workload.Apply(sess, workload.Spec{Kind: workload.Random, Ops: cfg.StormOps, Seed: cfg.Seed}); err != nil {
		return err
	}
	// A short fixed-position burst (60 ops reaches QRS's mantissa limit
	// without tripping ImprovedBinary's 255-bit field).
	skew := 60
	if cfg.SkewedOps < skew {
		skew = cfg.SkewedOps
	}
	if _, err := workload.Apply(sess, workload.Spec{Kind: workload.Skewed, Ops: skew, Seed: cfg.Seed + 1}); err != nil {
		return err
	}
	after := labeling.Snapshot(lab, doc)
	changed := 0
	for n, old := range before {
		if now, ok := after[n]; ok && now != old {
			changed++
		}
	}
	st := lab.Stats()
	rep.PersistenceChanged = changed
	rep.Relabeled = st.Relabeled
	rep.RelabelEvents += st.RelabelEvents
	rep.OverflowEvents += st.OverflowEvents
	if err := sess.Verify(); err != nil {
		rep.OrderPreserved = false
		rep.OrderNote = err.Error()
		if s.UniqueLabels {
			return fmt.Errorf("document order lost: %w", err)
		}
		rep.notef("order violated (documented uniqueness defect): %v", err)
	} else {
		rep.OrderPreserved = true
	}
	collectCounters(lab, rep)
	return nil
}

// --- xpath + level -----------------------------------------------------------

func probeXPath(s SchemeUnderTest, cfg ProbeConfig, rep *Report) error {
	doc := xmltree.Generate(xmltree.GenOptions{
		Seed: cfg.Seed + 2, MaxDepth: 5, MaxChildren: 4, AttrProb: 0.3,
		TargetNodes: cfg.XPathNodes,
	})
	lab := s.Factory()
	if err := lab.Build(doc); err != nil {
		return err
	}
	ad, adOK := lab.(labeling.AncestorByLabel)
	pc, pcOK := lab.(labeling.ParentByLabel)
	sib, sibOK := lab.(labeling.SiblingByLabel)
	lv, lvOK := lab.(labeling.LevelByLabel)
	rep.SupportsAD, rep.SupportsPC, rep.SupportsSib, rep.LevelSupported = adOK, pcOK, sibOK, lvOK
	rep.ADCorrect, rep.PCCorrect, rep.SibCorrect, rep.LevelCorrect = adOK, pcOK, sibOK, lvOK

	nodes := doc.LabelledNodes()
	for _, u := range nodes {
		lu := lab.Label(u)
		if lvOK {
			if got, ok := lv.Level(lu); !ok || got != u.Depth() {
				rep.LevelCorrect = false
			}
		}
		for _, v := range nodes {
			if u == v {
				continue
			}
			lv2 := lab.Label(v)
			if adOK && ad.IsAncestor(lu, lv2) != u.IsAncestorOf(v) {
				rep.ADCorrect = false
			}
			if pcOK && pc.IsParent(lu, lv2) != (xmltree.LabelledParent(v) == u) {
				rep.PCCorrect = false
			}
			if sibOK {
				truth := u != v && xmltree.LabelledParent(u) == xmltree.LabelledParent(v) &&
					xmltree.LabelledParent(u) != nil
				if sib.IsSibling(lu, lv2) != truth {
					rep.SibCorrect = false
				}
			}
		}
	}
	return nil
}

// --- overflow ----------------------------------------------------------------

func probeOverflow(s SchemeUnderTest, cfg ProbeConfig, rep *Report) error {
	doc := workload.BaseDocument(cfg.Seed+3, cfg.BaseNodes/2)
	sess, err := update.NewSession(doc, s.Factory())
	if err != nil {
		return err
	}
	lab := sess.Labeling()
	if _, err := workload.Apply(sess, workload.Spec{Kind: workload.Skewed, Ops: cfg.SkewedOps, Seed: cfg.Seed + 3}); err != nil {
		// A hard failure under insertion pressure is itself an
		// overflow finding, not a probe error.
		if errors.Is(err, labels.ErrOverflow) {
			rep.OverflowEvents++
			rep.notef("hard overflow during skewed storm: %v", err)
		} else {
			return err
		}
	}
	if err := zigzag(sess, cfg.ZigzagOps, rep); err != nil {
		return err
	}
	if _, err := workload.Apply(sess, workload.Spec{Kind: workload.Uniform, Ops: cfg.StormOps / 2, Seed: cfg.Seed + 4}); err != nil {
		if errors.Is(err, labels.ErrOverflow) {
			rep.OverflowEvents++
			rep.notef("hard overflow during uniform storm: %v", err)
		} else {
			return err
		}
	}
	st := lab.Stats()
	rep.RelabelEvents += st.RelabelEvents
	rep.OverflowEvents += st.OverflowEvents
	collectCounters(lab, rep)
	return nil
}

// zigzag alternates insertion sides between two fixed outer neighbours:
// the adversarial pattern that drives caret chains (ORDPATH), code
// lengths (binary/quaternary strings) and mediant components (vector,
// where Fibonacci growth crosses the UTF-8 ceiling — the §4 question).
func zigzag(sess *update.Session, ops int, rep *Report) error {
	doc := sess.Document()
	anchor := doc.Root().FirstChild()
	if anchor == nil {
		var err error
		anchor, err = sess.AppendChild(doc.Root(), "z")
		if err != nil {
			return err
		}
	}
	ref := anchor
	before := true
	for i := 0; i < ops; i++ {
		var n *xmltree.Node
		var err error
		if before {
			n, err = sess.InsertBefore(ref, "z")
		} else {
			n, err = sess.InsertAfter(ref, "z")
		}
		if err != nil {
			if errors.Is(err, labels.ErrOverflow) {
				rep.OverflowEvents++
				rep.notef("hard overflow during zigzag at step %d: %v", i, err)
				return nil
			}
			return err
		}
		ref = n
		before = !before
	}
	return nil
}

// --- orthogonality -----------------------------------------------------------

func probeOrthogonal(s SchemeUnderTest, cfg ProbeConfig, rep *Report) {
	if s.RangeFactory == nil {
		return
	}
	doc := workload.BaseDocument(cfg.Seed+5, cfg.BaseNodes/2)
	sess, err := update.NewSession(doc, s.RangeFactory())
	if err != nil {
		rep.notef("range mounting failed to build: %v", err)
		return
	}
	if _, err := workload.Apply(sess, workload.Spec{Kind: workload.Random, Ops: 40, Seed: cfg.Seed + 5}); err != nil {
		rep.notef("range mounting failed under updates: %v", err)
		return
	}
	if err := sess.Verify(); err != nil {
		rep.notef("range mounting lost order: %v", err)
		return
	}
	rep.OrthogonalOK = true
}

// --- compactness -------------------------------------------------------------

func probeCompact(s SchemeUnderTest, cfg ProbeConfig, rep *Report) error {
	depth, fanout := 5, 4
	if s.Scale > 0 && s.Scale < 1 {
		depth = 3
	}
	bulkDoc := xmltree.GenerateBalanced(depth, fanout)
	bulkLab := s.Factory()
	if err := bulkLab.Build(bulkDoc); err != nil {
		return err
	}
	rep.BulkMeanBits = labeling.MeanBits(bulkLab, bulkDoc)
	collectCounters(bulkLab, rep)

	run := func(kind workload.Kind, seed int64) (float64, error) {
		doc := xmltree.GenerateBalanced(depth, fanout)
		sess, err := update.NewSession(doc, s.Factory())
		if err != nil {
			return 0, err
		}
		before := labeling.Snapshot(sess.Labeling(), doc)
		ops := cfg.StormOps / 2
		if kind == workload.Skewed {
			ops = cfg.SkewedOps / 2
		}
		if _, err := workload.Apply(sess, workload.Spec{Kind: kind, Ops: ops, Seed: seed}); err != nil {
			if errors.Is(err, labels.ErrOverflow) {
				rep.notef("compact %s storm stopped by overflow: %v", kind, err)
			} else {
				return 0, err
			}
		}
		// Measure the labels created by the storm, not the diluted
		// whole-document mean.
		total, count := 0, 0
		doc.WalkLabelled(func(n *xmltree.Node) bool {
			if _, existed := before[n]; existed {
				return true
			}
			if l := sess.Labeling().Label(n); l != nil {
				total += l.Bits()
				count++
			}
			return true
		})
		collectCounters(sess.Labeling(), rep)
		if count == 0 {
			return rep.BulkMeanBits, nil
		}
		return float64(total) / float64(count), nil
	}
	var err error
	if rep.RandomMeanBits, err = run(workload.Random, cfg.Seed+6); err != nil {
		return err
	}
	if rep.UniformMeanBits, err = run(workload.Uniform, cfg.Seed+7); err != nil {
		return err
	}
	if rep.SkewedMeanBits, err = run(workload.Skewed, cfg.Seed+8); err != nil {
		return err
	}
	worst := rep.RandomMeanBits
	if rep.UniformMeanBits > worst {
		worst = rep.UniformMeanBits
	}
	if rep.SkewedMeanBits > worst {
		worst = rep.SkewedMeanBits
	}
	if rep.BulkMeanBits > 0 {
		rep.GrowthRatio = worst / rep.BulkMeanBits
	}
	return nil
}

// collectCounters folds an instrumented algebra's division/recursion
// counters into the report; schemes without one keep declared traits.
func collectCounters(lab labeling.Interface, rep *Report) {
	ap, ok := lab.(algebraProvider)
	if !ok {
		return
	}
	inst, ok := ap.Algebra().(labels.Instrumented)
	if !ok {
		return
	}
	c := inst.Counters()
	rep.Divisions += c.Divisions
	if c.MaxRecursion > rep.MaxRecursion {
		rep.MaxRecursion = c.MaxRecursion
	}
	rep.TraitsSource = "instrumented"
}

// applyDeclaredTraits overrides division/recursion measurements for
// schemes without an instrumented algebra.
func applyDeclaredTraits(s SchemeUnderTest, rep *Report) {
	if rep.TraitsSource == "instrumented" || s.DeclaredTraits == nil {
		return
	}
	if !s.DeclaredTraits.DivisionFree {
		rep.Divisions = 1
	}
	if s.DeclaredTraits.RecursiveInit {
		rep.MaxRecursion = 1
	}
}
