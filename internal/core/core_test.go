package core

import (
	"strings"
	"testing"

	"xmldyn/internal/labels"
)

func TestPublishedMatrixShape(t *testing.T) {
	rows := PublishedMatrix()
	if len(rows) != 12 {
		t.Fatalf("Figure 7 has 12 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Grades) != len(AllProperties) {
			t.Errorf("%s: %d grades", r.Scheme, len(r.Grades))
		}
	}
	// Spot-check cells against the printed figure.
	qed, _ := PublishedRow("qed")
	if qed.Grade(OverflowFree) != Full || qed.Grade(CompactEncoding) != None {
		t.Error("QED row mismatch")
	}
	acc, _ := PublishedRow("xpath-accelerator")
	if acc.Order != labels.OrderGlobal || acc.Encoding != labels.RepFixed || acc.Grade(PersistentLabels) != None {
		t.Error("XPath Accelerator row mismatch")
	}
	vec, _ := PublishedRow("vector")
	if vec.Grade(DivisionFree) != Full || vec.Grade(LevelEncoding) != None {
		t.Error("Vector row mismatch")
	}
	if _, ok := PublishedRow("nope"); ok {
		t.Error("unknown scheme found")
	}
}

// TestSection52NoTwoSchemesShareProperties checks the paper's §5.2
// claim — "No two labelling schemes share the same properties" —
// against the printed matrix itself. The claim does not in fact hold
// for Figure 7 as published: XPath Accelerator and XRel have identical
// rows, and so do DeweyID and LSDX. The analysis surfaces exactly those
// two pairs (a reproduction finding recorded in EXPERIMENTS.md C8).
func TestSection52NoTwoSchemesShareProperties(t *testing.T) {
	a := AnalyzeMatrix(PublishedMatrix())
	if len(a.DuplicateSignatures) != 2 {
		t.Fatalf("duplicate signatures: %v", a.DuplicateSignatures)
	}
	want := map[[2]string]bool{
		{"xpath-accelerator", "xrel"}: true,
		{"deweyid", "lsdx"}:           true,
	}
	for _, d := range a.DuplicateSignatures {
		if !want[d] {
			t.Fatalf("unexpected duplicate pair: %v", d)
		}
	}
}

// TestSection52CDQSMostGeneric reproduces: "the CDQS labelling scheme
// satisfies the greater number of properties".
func TestSection52CDQSMostGeneric(t *testing.T) {
	a := AnalyzeMatrix(PublishedMatrix())
	if a.MostGeneric != "cdqs" {
		t.Fatalf("most generic = %s, want cdqs", a.MostGeneric)
	}
	if a.MostGenericFull != 6 {
		t.Fatalf("cdqs full count = %d, want 6", a.MostGenericFull)
	}
}

func TestComplianceAndPropertyStrings(t *testing.T) {
	if Full.String() != "F" || Partial.String() != "P" || None.String() != "N" {
		t.Error("compliance strings")
	}
	for _, p := range AllProperties {
		if strings.Contains(p.String(), "property(") {
			t.Errorf("missing name for property %d", p)
		}
		if p.Short() == "??" {
			t.Errorf("missing short name for property %d", p)
		}
	}
}

func TestRegistryCoversMatrix(t *testing.T) {
	reg := Registry()
	inMatrix := 0
	names := make(map[string]bool)
	for _, s := range reg {
		if names[s.Name] {
			t.Errorf("duplicate registry name %s", s.Name)
		}
		names[s.Name] = true
		if s.InMatrix {
			inMatrix++
			if _, ok := PublishedRow(s.Name); !ok {
				t.Errorf("%s marked InMatrix but has no published row", s.Name)
			}
		}
	}
	if inMatrix != 12 {
		t.Errorf("registry covers %d of 12 matrix rows", inMatrix)
	}
	for _, p := range PublishedMatrix() {
		if !names[p.Scheme] {
			t.Errorf("published scheme %s missing from registry", p.Scheme)
		}
	}
	if _, ok := SchemeByName("qed"); !ok {
		t.Error("SchemeByName(qed) failed")
	}
	if _, ok := SchemeByName("nope"); ok {
		t.Error("SchemeByName(nope) succeeded")
	}
}

func TestRenderMatrix(t *testing.T) {
	var sb strings.Builder
	if err := RenderMatrix(&sb, PublishedMatrix()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, needle := range []string{"Labelling Scheme", "Pe", "cdqs", "Hybrid", "Variable"} {
		if !strings.Contains(out, needle) {
			t.Errorf("matrix missing %q:\n%s", needle, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 14 { // header + rule + 12 rows
		t.Errorf("matrix lines = %d", len(lines))
	}
}

func TestDiffMatricesSelf(t *testing.T) {
	diffs, cells := DiffMatrices(PublishedMatrix(), PublishedMatrix())
	if len(diffs) != 0 {
		t.Fatalf("self diff: %v", diffs)
	}
	if cells != 12*10 {
		t.Fatalf("cells = %d, want 120", cells)
	}
	// A doctored cell must surface.
	mod := PublishedMatrix()
	mod[0].Grades[PersistentLabels] = Full
	diffs, _ = DiffMatrices(PublishedMatrix(), mod)
	if len(diffs) != 1 || diffs[0].Column != PersistentLabels.String() {
		t.Fatalf("doctored diff: %v", diffs)
	}
}
