package core

import (
	"fmt"
	"io"
	"strings"
)

// RenderMatrix writes the evaluation matrix in the layout of Figure 7.
func RenderMatrix(w io.Writer, rows []Assessment) error {
	nameW := len("Labelling Scheme")
	for _, r := range rows {
		if len(r.Scheme) > nameW {
			nameW = len(r.Scheme)
		}
	}
	header := fmt.Sprintf("%-*s  %-6s  %-8s", nameW, "Labelling Scheme", "Order", "Enc.")
	for _, p := range AllProperties {
		header += fmt.Sprintf("  %s", p.Short())
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range rows {
		line := fmt.Sprintf("%-*s  %-6s  %-8s", nameW, r.Scheme, r.Order, r.Encoding)
		for _, p := range AllProperties {
			line += fmt.Sprintf("  %2s", r.Grades[p])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// CellDiff is one disagreement between the published and measured
// matrices.
type CellDiff struct {
	Scheme    string
	Column    string // property name, "Order" or "Encoding"
	Published string
	Measured  string
}

// DiffMatrices compares measured rows against the published Figure 7,
// cell by cell, returning the disagreements and the total number of
// compared cells. Measured-only schemes are skipped.
func DiffMatrices(published, measured []Assessment) (diffs []CellDiff, cells int) {
	pub := make(map[string]Assessment, len(published))
	for _, p := range published {
		pub[p.Scheme] = p
	}
	for _, m := range measured {
		p, ok := pub[m.Scheme]
		if !ok {
			continue
		}
		cells++
		if p.Order != m.Order {
			diffs = append(diffs, CellDiff{m.Scheme, "Order", p.Order.String(), m.Order.String()})
		}
		cells++
		if p.Encoding != m.Encoding {
			diffs = append(diffs, CellDiff{m.Scheme, "Encoding", p.Encoding.String(), m.Encoding.String()})
		}
		for _, prop := range AllProperties {
			cells++
			if p.Grades[prop] != m.Grades[prop] {
				diffs = append(diffs, CellDiff{m.Scheme, prop.String(), p.Grades[prop].String(), m.Grades[prop].String()})
			}
		}
	}
	return diffs, cells
}

// Analyze reproduces the §5.2 findings over a matrix: whether any two
// schemes share the same property signature, and which scheme satisfies
// the most properties.
type Analysis struct {
	DuplicateSignatures [][2]string
	MostGeneric         string
	MostGenericFull     int
}

// AnalyzeMatrix computes the §5.2 analysis.
func AnalyzeMatrix(rows []Assessment) Analysis {
	var a Analysis
	seen := make(map[string]string)
	for _, r := range rows {
		sig := r.Signature()
		if other, dup := seen[sig]; dup {
			a.DuplicateSignatures = append(a.DuplicateSignatures, [2]string{other, r.Scheme})
		} else {
			seen[sig] = r.Scheme
		}
		if fc := r.FullCount(); fc > a.MostGenericFull {
			a.MostGenericFull = fc
			a.MostGeneric = r.Scheme
		}
	}
	return a
}

// RenderReport writes the measurements behind one assessment.
func RenderReport(w io.Writer, r *Report) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scheme %s\n", r.Scheme)
	fmt.Fprintf(&sb, "  order preserved: %v", r.OrderPreserved)
	if r.OrderNote != "" {
		fmt.Fprintf(&sb, " (%s)", r.OrderNote)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  persistence: %d labels changed, %d relabelled (events %d, overflow %d)\n",
		r.PersistenceChanged, r.Relabeled, r.RelabelEvents, r.OverflowEvents)
	fmt.Fprintf(&sb, "  xpath: AD %v/%v PC %v/%v Sib %v/%v Level %v/%v\n",
		r.SupportsAD, r.ADCorrect, r.SupportsPC, r.PCCorrect,
		r.SupportsSib, r.SibCorrect, r.LevelSupported, r.LevelCorrect)
	fmt.Fprintf(&sb, "  orthogonal mounting ok: %v\n", r.OrthogonalOK)
	fmt.Fprintf(&sb, "  bits: bulk %.1f random %.1f uniform %.1f skewed %.1f growth %.2fx\n",
		r.BulkMeanBits, r.RandomMeanBits, r.UniformMeanBits, r.SkewedMeanBits, r.GrowthRatio)
	fmt.Fprintf(&sb, "  divisions %d, recursion depth %d (%s)\n", r.Divisions, r.MaxRecursion, r.TraitsSource)
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
