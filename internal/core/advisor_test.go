package core

import (
	"testing"

	"xmldyn/internal/labels"
)

// TestVersionControlProfile reproduces the first §5.2 worked example:
// version control needs persistent labels, which excludes DeweyID and
// the containment schemes and selects the persistent family.
func TestVersionControlProfile(t *testing.T) {
	req, err := ProfileRequirements(ProfileVersionControl)
	if err != nil {
		t.Fatal(err)
	}
	recs := Recommend(PublishedMatrix(), req)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	allowed := map[string]bool{"ordpath": true, "improvedbinary": true, "qed": true, "cdqs": true, "vector": true}
	for _, r := range recs {
		if !allowed[r.Scheme] {
			t.Errorf("non-persistent scheme recommended: %s", r.Scheme)
		}
	}
	// CDQS tops the persistent family (most Full grades).
	if recs[0].Scheme != "cdqs" {
		t.Errorf("top recommendation: %s", recs[0].Scheme)
	}
}

// TestLargeDocumentsProfile reproduces the second §5.2 worked example:
// overflow-free schemes only — QED, CDQS, Vector in the published
// matrix, with the compact ones first.
func TestLargeDocumentsProfile(t *testing.T) {
	req, err := ProfileRequirements(ProfileLargeDocuments)
	if err != nil {
		t.Fatal(err)
	}
	recs := Recommend(PublishedMatrix(), req)
	names := map[string]bool{}
	for _, r := range recs {
		names[r.Scheme] = true
	}
	if len(recs) != 3 || !names["qed"] || !names["cdqs"] || !names["vector"] {
		t.Fatalf("recommendations: %v", recs)
	}
	if recs[0].Scheme == "qed" {
		t.Error("QED is not compact; it must not rank first")
	}
}

// TestGeneralProfile reproduces §5.2's generality finding.
func TestGeneralProfile(t *testing.T) {
	req, _ := ProfileRequirements(ProfileGeneral)
	recs := Recommend(PublishedMatrix(), req)
	if recs[0].Scheme != "cdqs" {
		t.Errorf("most generic: %s, want cdqs", recs[0].Scheme)
	}
}

func TestQueryHeavyProfile(t *testing.T) {
	req, _ := ProfileRequirements(ProfileQueryHeavy)
	recs := Recommend(PublishedMatrix(), req)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range recs {
		row, _ := PublishedRow(r.Scheme)
		if row.Grade(XPathEvaluations) != Full || row.Grade(LevelEncoding) != Full {
			t.Errorf("%s lacks required query properties", r.Scheme)
		}
	}
}

func TestRecommendRestrictions(t *testing.T) {
	fixed := labels.RepFixed
	recs := Recommend(PublishedMatrix(), Requirements{Encoding: &fixed})
	for _, r := range recs {
		row, _ := PublishedRow(r.Scheme)
		if row.Encoding != labels.RepFixed {
			t.Errorf("%s is not fixed encoding", r.Scheme)
		}
	}
	hybrid := labels.OrderHybrid
	recs = Recommend(PublishedMatrix(), Requirements{Order: &hybrid, Require: []Property{PersistentLabels}})
	for _, r := range recs {
		row, _ := PublishedRow(r.Scheme)
		if row.Order != labels.OrderHybrid {
			t.Errorf("%s is not hybrid order", r.Scheme)
		}
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := ProfileRequirements(Profile("nope")); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if len(Profiles()) != 4 {
		t.Errorf("profiles: %v", Profiles())
	}
}

func TestRecommendWhyText(t *testing.T) {
	req, _ := ProfileRequirements(ProfileVersionControl)
	recs := Recommend(PublishedMatrix(), req)
	for _, r := range recs {
		if r.Why == "" {
			t.Errorf("%s has no rationale", r.Scheme)
		}
	}
}
