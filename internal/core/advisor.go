package core

import (
	"fmt"
	"sort"

	"xmldyn/internal/labels"
)

// Requirements captures what a repository needs from its labelling
// scheme, in the vocabulary of §5.2's worked examples: "a repository
// that may want to record document history and enable version control
// would select a labelling scheme supporting persistent labels.
// Alternatively, an XML repository that is expected to consume very
// large documents on a regular basis may consider a labelling scheme
// that is not subject to the overflow problem."
type Requirements struct {
	// Require lists properties that must grade Full.
	Require []Property
	// Prefer lists properties that break ties (more Full grades first).
	Prefer []Property
	// Order, when non-nil, restricts the document-order method.
	Order *labels.Order
	// Encoding, when non-nil, restricts the storage representation.
	Encoding *labels.Rep
}

// Recommendation is one advisor result.
type Recommendation struct {
	Scheme string
	// Satisfied counts Full grades on the preferred properties.
	Satisfied int
	// FullCount is the scheme's overall Full count (the §5.2 generality
	// measure).
	FullCount int
	// Why summarises the decisive grades.
	Why string
}

// Recommend ranks the matrix rows against the requirements: schemes
// failing any Require or restriction are excluded; survivors order by
// preferred-property satisfaction, then overall generality, then name.
func Recommend(rows []Assessment, req Requirements) []Recommendation {
	var out []Recommendation
	for _, r := range rows {
		if req.Order != nil && r.Order != *req.Order {
			continue
		}
		if req.Encoding != nil && r.Encoding != *req.Encoding {
			continue
		}
		ok := true
		for _, p := range req.Require {
			if r.Grades[p] != Full {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		sat := 0
		why := ""
		for _, p := range req.Prefer {
			if r.Grades[p] == Full {
				sat++
				if why != "" {
					why += ", "
				}
				why += p.String()
			}
		}
		if why == "" {
			why = "meets all required properties"
		} else {
			why = "also full on " + why
		}
		out = append(out, Recommendation{
			Scheme:    r.Scheme,
			Satisfied: sat,
			FullCount: r.FullCount(),
			Why:       why,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Satisfied != out[j].Satisfied {
			return out[i].Satisfied > out[j].Satisfied
		}
		if out[i].FullCount != out[j].FullCount {
			return out[i].FullCount > out[j].FullCount
		}
		return out[i].Scheme < out[j].Scheme
	})
	return out
}

// Profile names a §5.2-style selection scenario.
type Profile string

// Built-in advisor profiles.
const (
	// ProfileVersionControl: "record document history and enable
	// version control" — labels must be persistent identities.
	ProfileVersionControl Profile = "version-control"
	// ProfileLargeDocuments: "consume very large documents on a
	// regular basis" — immunity to the overflow problem, compactness
	// preferred.
	ProfileLargeDocuments Profile = "large-documents"
	// ProfileQueryHeavy: static data, query optimisation first — full
	// XPath evaluations and level encoding, compact fixed labels.
	ProfileQueryHeavy Profile = "query-heavy"
	// ProfileGeneral: the most generic scheme (§5.2's CDQS finding).
	ProfileGeneral Profile = "general"
)

// Profiles lists the built-in profiles.
func Profiles() []Profile {
	return []Profile{ProfileVersionControl, ProfileLargeDocuments, ProfileQueryHeavy, ProfileGeneral}
}

// ProfileRequirements expands a named profile.
func ProfileRequirements(p Profile) (Requirements, error) {
	switch p {
	case ProfileVersionControl:
		return Requirements{
			Require: []Property{PersistentLabels},
			Prefer:  []Property{OverflowFree, XPathEvaluations, CompactEncoding},
		}, nil
	case ProfileLargeDocuments:
		return Requirements{
			Require: []Property{OverflowFree},
			Prefer:  []Property{CompactEncoding, PersistentLabels, XPathEvaluations},
		}, nil
	case ProfileQueryHeavy:
		return Requirements{
			Require: []Property{XPathEvaluations, LevelEncoding},
			Prefer:  []Property{CompactEncoding, DivisionFree, NonRecursiveInit},
		}, nil
	case ProfileGeneral:
		return Requirements{
			Prefer: AllProperties[:],
		}, nil
	default:
		return Requirements{}, fmt.Errorf("core: unknown profile %q (known: %v)", p, Profiles())
	}
}
