package core

import (
	"strings"
	"testing"
)

// fastConfig keeps the full probe suite quick in unit tests; the bench
// harness runs the default sizes.
func fastConfig() ProbeConfig {
	cfg := DefaultProbeConfig()
	cfg.BaseNodes = 120
	cfg.StormOps = 120
	cfg.SkewedOps = 300 // still past ImprovedBinary's 255-bit field
	cfg.ZigzagOps = 100 // still past ORDPATH's caret-chain budget
	cfg.XPathNodes = 40
	return cfg
}

// TestEvaluateAgainstPublished measures every Figure 7 scheme and
// checks the columns that must agree exactly; the judgement-based
// compact column and the documented divergences (EXPERIMENTS.md) are
// asserted separately.
func TestEvaluateAgainstPublished(t *testing.T) {
	if testing.Short() {
		t.Skip("probe suite in -short mode")
	}
	// Cells where our measurement legitimately diverges from Figure 7;
	// each carries the EXPERIMENTS.md explanation.
	documented := map[string]map[Property]bool{
		"sector":         {CompactEncoding: true, NonRecursiveInit: true},
		"qrs":            {DivisionFree: true},
		"ordpath":        {CompactEncoding: true},
		"dln":            {CompactEncoding: true},
		"qed":            {CompactEncoding: true},
		"improvedbinary": {CompactEncoding: true},
		"cdqs":           {CompactEncoding: true, DivisionFree: true, NonRecursiveInit: true},
		"vector":         {OverflowFree: true},
	}
	for _, s := range Registry() {
		if !s.InMatrix {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			measured, rep, err := Evaluate(s, fastConfig())
			if err != nil {
				t.Fatal(err)
			}
			published, ok := PublishedRow(s.Name)
			if !ok {
				t.Fatalf("no published row for %s", s.Name)
			}
			if measured.Order != published.Order || measured.Encoding != published.Encoding {
				t.Errorf("classification: measured %s/%s, published %s/%s",
					measured.Order, measured.Encoding, published.Order, published.Encoding)
			}
			for _, p := range AllProperties {
				if measured.Grades[p] == published.Grades[p] {
					continue
				}
				if documented[s.Name][p] {
					t.Logf("documented divergence on %s: measured %s, published %s",
						p, measured.Grades[p], published.Grades[p])
					continue
				}
				t.Errorf("%s: measured %s, published %s (report: %+v)",
					p, measured.Grades[p], published.Grades[p], *rep)
			}
		})
	}
}

// TestEvaluateExtras runs the measured-only schemes end to end.
func TestEvaluateExtras(t *testing.T) {
	if testing.Short() {
		t.Skip("probe suite in -short mode")
	}
	expectations := map[string]map[Property]Compliance{
		// CDBS: persistent until overflow, overflow-prone, orthogonal,
		// compact, division-free, non-recursive.
		"cdbs": {OverflowFree: None, Orthogonal: Full, DivisionFree: Full, NonRecursiveInit: Full},
		// Prime: persistent, divisibility AD, level stored, never
		// overflows (fresh primes always exist).
		"prime": {PersistentLabels: Full, OverflowFree: Full, XPathEvaluations: Partial},
		// DDE: fully dynamic labels, full XPath from labels. (The
		// overflow grade depends on component width: int64 mediant
		// components explode under adversarial zigzag, so OverflowFree
		// is reported, not asserted — see EXPERIMENTS.md.)
		"dde": {PersistentLabels: Full, XPathEvaluations: Full, LevelEncoding: Full},
		// Com-D inherits the LSDX uniqueness defect: not persistent.
		"com-d": {PersistentLabels: None},
	}
	for name, want := range expectations {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, ok := SchemeByName(name)
			if !ok {
				t.Fatalf("missing registry entry %s", name)
			}
			measured, rep, err := Evaluate(s, fastConfig())
			if err != nil {
				t.Fatal(err)
			}
			for p, g := range want {
				if measured.Grades[p] != g {
					t.Errorf("%s: measured %s, want %s (report %+v)", p, measured.Grades[p], g, *rep)
				}
			}
		})
	}
}

// TestQEDAndCDQSMeasureOverflowFree pins the §4 headline: the two
// quaternary schemes survive every storm with zero relabels.
func TestQEDAndCDQSMeasureOverflowFree(t *testing.T) {
	if testing.Short() {
		t.Skip("probe suite in -short mode")
	}
	for _, name := range []string{"qed", "cdqs"} {
		s, _ := SchemeByName(name)
		measured, rep, err := Evaluate(s, fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		if measured.Grades[OverflowFree] != Full {
			t.Errorf("%s overflow grade %s (report %+v)", name, measured.Grades[OverflowFree], *rep)
		}
		if measured.Grades[PersistentLabels] != Full {
			t.Errorf("%s persistence grade %s", name, measured.Grades[PersistentLabels])
		}
	}
}

func TestRenderReport(t *testing.T) {
	s, _ := SchemeByName("deweyid")
	cfg := fastConfig()
	cfg.StormOps = 40
	cfg.SkewedOps = 40
	_, rep, err := Evaluate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderReport(&sb, rep); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"scheme deweyid", "persistence:", "bits:"} {
		if !strings.Contains(sb.String(), needle) {
			t.Errorf("report missing %q:\n%s", needle, sb.String())
		}
	}
}
