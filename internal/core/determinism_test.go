package core

import (
	"sync"
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/workload"
)

// TestEvaluateDeterministic: the probes are fully seeded, so two
// evaluations with the same config must grade identically — the
// property that makes EXPERIMENTS.md reproducible.
func TestEvaluateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("probe suite in -short mode")
	}
	cfg := fastConfig()
	for _, name := range []string{"qed", "deweyid", "dln", "vector"} {
		s, _ := SchemeByName(name)
		a1, _, err := Evaluate(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a2, _, err := Evaluate(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a1.Signature() != a2.Signature() {
			t.Errorf("%s: %s != %s", name, a1.Signature(), a2.Signature())
		}
	}
}

// TestConcurrentLabelReads: after Build, concurrent readers (Label,
// Compare, capability queries) are safe — the read-mostly usage an XML
// repository's query side needs. Run under -race in CI.
func TestConcurrentLabelReads(t *testing.T) {
	doc := workload.BaseDocument(42, 300)
	for _, name := range []string{"qed", "deweyid", "xpath-accelerator", "dde"} {
		s, _ := SchemeByName(name)
		lab := s.Factory()
		if err := lab.Build(doc.Clone()); err != nil {
			// Build against a fresh clone per scheme.
			t.Fatal(err)
		}
		target := doc
		// Rebuild against the shared doc for the read test.
		lab = s.Factory()
		if err := lab.Build(target); err != nil {
			t.Fatal(err)
		}
		nodes := target.LabelledNodes()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					a := lab.Label(nodes[(g*31+i)%len(nodes)])
					b := lab.Label(nodes[(g*17+i*3)%len(nodes)])
					if a == nil || b == nil {
						t.Errorf("nil label during concurrent read")
						return
					}
					_ = lab.Compare(a, b)
					if ad, ok := lab.(labeling.AncestorByLabel); ok {
						_ = ad.IsAncestor(a, b)
					}
					_ = a.Bits()
					_ = a.String()
				}
			}(g)
		}
		wg.Wait()
	}
}
