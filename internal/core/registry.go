package core

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/cdbs"
	"xmldyn/internal/schemes/cdqs"
	"xmldyn/internal/schemes/cohen"
	"xmldyn/internal/schemes/comd"
	"xmldyn/internal/schemes/containment"
	"xmldyn/internal/schemes/dde"
	"xmldyn/internal/schemes/dewey"
	"xmldyn/internal/schemes/dln"
	"xmldyn/internal/schemes/improvedbinary"
	"xmldyn/internal/schemes/lsdx"
	"xmldyn/internal/schemes/ordpath"
	"xmldyn/internal/schemes/prime"
	"xmldyn/internal/schemes/qed"
	"xmldyn/internal/schemes/qrs"
	"xmldyn/internal/schemes/sector"
	"xmldyn/internal/schemes/vector"
)

// Registry returns every scheme under test: the twelve Figure 7 rows in
// the paper's order, followed by the measured-only extras (CDBS from §4,
// Com-D from §3.1.2, and the Prime and DDE schemes §6 queues up). The
// vector scheme is registered with its containment mounting, matching
// the survey's grading of its XPath and level columns; the prefix
// mounting appears as the extra row "vector-prefix".
func Registry() []SchemeUnderTest {
	return []SchemeUnderTest{
		{
			Name:    "xpath-accelerator",
			Factory: func() labeling.Interface { return containment.NewPrePost() },
			Order:   labels.OrderGlobal, Encoding: labels.RepFixed,
			DeclaredTraits: &labels.Traits{DivisionFree: true},
			UniqueLabels:   true, InMatrix: true,
		},
		{
			Name:    "xrel",
			Factory: func() labeling.Interface { return containment.NewXRel() },
			Order:   labels.OrderGlobal, Encoding: labels.RepFixed,
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "sector",
			Factory: sector.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepFixed,
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "qrs",
			Factory: qrs.Factory(),
			Order:   labels.OrderGlobal, Encoding: labels.RepFixed,
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "deweyid",
			Factory: dewey.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "ordpath",
			Factory: ordpath.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "dln",
			Factory: dln.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepFixed,
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "lsdx",
			Factory: lsdx.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			UniqueLabels: false, InMatrix: true,
		},
		{
			Name:    "improvedbinary",
			Factory: improvedbinary.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "qed",
			Factory: qed.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			RangeFactory: func() labeling.Interface { return qed.NewRange() },
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "cdqs",
			Factory: cdqs.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			RangeFactory: func() labeling.Interface { return cdqs.NewRange() },
			UniqueLabels: true, InMatrix: true,
		},
		{
			Name:    "vector",
			Factory: func() labeling.Interface { return vector.NewRange() },
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			RangeFactory: func() labeling.Interface { return vector.NewRange() },
			UniqueLabels: true, InMatrix: true,
		},

		// Measured-only rows (no published Figure 7 entry).
		{
			Name:    "vector-prefix",
			Factory: vector.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			RangeFactory: func() labeling.Interface { return vector.NewRange() },
			UniqueLabels: true,
		},
		{
			Name:    "cdbs",
			Factory: cdbs.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepFixed,
			RangeFactory: func() labeling.Interface { return cdbs.NewRange() },
			UniqueLabels: true,
		},
		{
			Name:    "com-d",
			Factory: comd.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			UniqueLabels: false,
		},
		{
			Name:    "prime",
			Factory: prime.Factory(),
			Order:   labels.OrderGlobal, Encoding: labels.RepVariable,
			DeclaredTraits: &labels.Traits{DivisionFree: true},
			Scale:          0.15,
			UniqueLabels:   true,
		},
		{
			Name:    "dde",
			Factory: dde.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			DeclaredTraits: &labels.Traits{DivisionFree: true},
			UniqueLabels:   true,
		},
		{
			// Described in §3.1.2 but excluded from the matrix ("does
			// not support the maintenance of document order under
			// updates"); measured to show what the exclusion costs.
			Name:    "cohen",
			Factory: cohen.Factory(),
			Order:   labels.OrderHybrid, Encoding: labels.RepVariable,
			UniqueLabels: true,
		},
	}
}

// SchemeByName looks up a registry entry.
func SchemeByName(name string) (SchemeUnderTest, bool) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, true
		}
	}
	return SchemeUnderTest{}, false
}

// MustScheme looks up a registry entry, panicking on unknown names
// (static call sites in benchmarks and tools).
func MustScheme(name string) SchemeUnderTest {
	s, ok := SchemeByName(name)
	if !ok {
		panic(fmt.Sprintf("core: unknown scheme %q", name))
	}
	return s
}

// EvaluateAll measures every registered scheme and returns the matrix
// rows (registry order) with their reports.
func EvaluateAll(cfg ProbeConfig) ([]Assessment, []*Report, error) {
	var rows []Assessment
	var reports []*Report
	for _, s := range Registry() {
		a, r, err := Evaluate(s, cfg)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, a)
		reports = append(reports, r)
	}
	return rows, reports, nil
}
