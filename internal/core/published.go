package core

import "xmldyn/internal/labels"

// PublishedMatrix returns the paper's Figure 7 verbatim: twelve schemes,
// their document-order method, encoding representation and the eight
// graded properties in column order (Persistent Labels, XPath Eval.,
// Level Enc., Overflow Prob., Orthogonal, Compact Enc., Division Comp.,
// Recursion Alg.).
func PublishedMatrix() []Assessment {
	row := func(name string, order labels.Order, rep labels.Rep, g [8]Compliance) Assessment {
		grades := make(map[Property]Compliance, 8)
		for i, p := range AllProperties {
			grades[p] = g[i]
		}
		return Assessment{Scheme: name, Order: order, Encoding: rep, Grades: grades}
	}
	return []Assessment{
		row("xpath-accelerator", labels.OrderGlobal, labels.RepFixed,
			[8]Compliance{None, Partial, Full, None, None, Full, Full, Full}),
		row("xrel", labels.OrderGlobal, labels.RepFixed,
			[8]Compliance{None, Partial, Full, None, None, Full, Full, Full}),
		row("sector", labels.OrderHybrid, labels.RepFixed,
			[8]Compliance{None, Partial, None, None, None, Partial, Full, None}),
		row("qrs", labels.OrderGlobal, labels.RepFixed,
			[8]Compliance{None, Partial, None, None, None, Partial, Full, Full}),
		row("deweyid", labels.OrderHybrid, labels.RepVariable,
			[8]Compliance{None, Full, Full, None, None, None, Full, Full}),
		row("ordpath", labels.OrderHybrid, labels.RepVariable,
			[8]Compliance{Full, Full, Full, None, None, None, None, Full}),
		row("dln", labels.OrderHybrid, labels.RepFixed,
			[8]Compliance{None, Full, Full, None, None, None, Full, Full}),
		row("lsdx", labels.OrderHybrid, labels.RepVariable,
			[8]Compliance{None, Full, Full, None, None, None, Full, Full}),
		row("improvedbinary", labels.OrderHybrid, labels.RepVariable,
			[8]Compliance{Full, Full, Full, None, None, None, None, None}),
		row("qed", labels.OrderHybrid, labels.RepVariable,
			[8]Compliance{Full, Full, Full, Full, Full, None, None, None}),
		row("cdqs", labels.OrderHybrid, labels.RepVariable,
			[8]Compliance{Full, Full, Full, Full, Full, Full, None, None}),
		row("vector", labels.OrderHybrid, labels.RepVariable,
			[8]Compliance{Full, Partial, None, Full, Full, Full, Full, None}),
	}
}

// PublishedRow returns the Figure 7 row for a scheme name, if present.
func PublishedRow(name string) (Assessment, bool) {
	for _, a := range PublishedMatrix() {
		if a.Scheme == name {
			return a, true
		}
	}
	return Assessment{}, false
}
