// Package core implements the paper's primary contribution: the
// evaluation framework of §5 — "a template of properties that are
// representative of the characteristics of a good dynamic labelling
// scheme". It defines the ten framework properties, carries the
// published Figure 7 matrix verbatim, and — going beyond the paper's
// pen-and-paper assessment — derives a *measured* matrix by probing
// live scheme implementations with the §5.1 workloads.
package core

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
)

// Property is one of the eight graded framework properties of §5.1.
// (Document Order and Encoding Representation are classifications, not
// grades; they live directly on Assessment.)
type Property int

// The graded properties, in the column order of Figure 7.
const (
	// PersistentLabels: deletions and insertions never affect existing
	// nodes' labels.
	PersistentLabels Property = iota
	// XPathEvaluations: ancestor-descendant, parent-child and
	// sibling-based relationships are decidable from labels alone.
	XPathEvaluations
	// LevelEncoding: the nesting depth is decidable from the label.
	LevelEncoding
	// OverflowFree: the scheme is not subject to the §4 overflow
	// problem and never relabels under any insertion pattern.
	OverflowFree
	// Orthogonal: the code space mounts on both prefix and containment
	// labelings.
	Orthogonal
	// CompactEncoding: compact storage with constrained growth under
	// random, uniform and skewed update scenarios.
	CompactEncoding
	// DivisionFree: label assignment and insertion never perform
	// division computations.
	DivisionFree
	// NonRecursiveInit: the initial bulk labelling is not recursive.
	NonRecursiveInit
)

// AllProperties lists the graded properties in Figure 7 column order.
var AllProperties = [...]Property{
	PersistentLabels, XPathEvaluations, LevelEncoding, OverflowFree,
	Orthogonal, CompactEncoding, DivisionFree, NonRecursiveInit,
}

// String returns the property's column heading.
func (p Property) String() string {
	switch p {
	case PersistentLabels:
		return "Persistent Labels"
	case XPathEvaluations:
		return "XPath Eval."
	case LevelEncoding:
		return "Level Enc."
	case OverflowFree:
		return "Overflow Prob."
	case Orthogonal:
		return "Orthogonal"
	case CompactEncoding:
		return "Compact Enc."
	case DivisionFree:
		return "Division Comp."
	case NonRecursiveInit:
		return "Recursion Alg."
	default:
		return fmt.Sprintf("property(%d)", int(p))
	}
}

// Short returns the two-letter column abbreviation used in rendering.
func (p Property) Short() string {
	switch p {
	case PersistentLabels:
		return "Pe"
	case XPathEvaluations:
		return "XP"
	case LevelEncoding:
		return "Lv"
	case OverflowFree:
		return "Ov"
	case Orthogonal:
		return "Or"
	case CompactEncoding:
		return "Cm"
	case DivisionFree:
		return "Dv"
	case NonRecursiveInit:
		return "Rc"
	default:
		return "??"
	}
}

// Compliance is the paper's three-level grade: "Full (F) compliance;
// Partial (P) compliance and No (N) compliance".
type Compliance int

// Grades.
const (
	None Compliance = iota
	Partial
	Full
)

// String renders the grade as in Figure 7.
func (c Compliance) String() string {
	switch c {
	case Full:
		return "F"
	case Partial:
		return "P"
	default:
		return "N"
	}
}

// Assessment is one matrix row: a scheme's classification and grades.
type Assessment struct {
	Scheme   string
	Order    labels.Order
	Encoding labels.Rep
	Grades   map[Property]Compliance
}

// Grade returns the grade for p (None when absent).
func (a Assessment) Grade(p Property) Compliance { return a.Grades[p] }

// FullCount returns how many properties the scheme fully satisfies —
// the figure behind §5.2's finding that "the CDQS labelling scheme
// satisfies the greater number of properties".
func (a Assessment) FullCount() int {
	n := 0
	for _, p := range AllProperties {
		if a.Grades[p] == Full {
			n++
		}
	}
	return n
}

// Signature renders the grade vector, used by the §5.2 "no two schemes
// share the same properties" analysis.
func (a Assessment) Signature() string {
	s := a.Order.String() + "/" + a.Encoding.String()
	for _, p := range AllProperties {
		s += "/" + a.Grades[p].String()
	}
	return s
}

// SchemeUnderTest bundles everything the probes need to evaluate one
// scheme implementation.
type SchemeUnderTest struct {
	Name    string
	Factory labeling.Factory
	// Order and Encoding are definitional classifications (§3.1, §5.1).
	Order    labels.Order
	Encoding labels.Rep
	// RangeFactory, when non-nil, is the scheme's containment mounting
	// (the orthogonality witness).
	RangeFactory labeling.Factory
	// DeclaredTraits supplies division/recursion facts for schemes
	// whose labeling exposes no instrumented algebra.
	DeclaredTraits *labels.Traits
	// Scale shrinks probe workloads for expensive schemes (prime
	// recomputes a CRT per insertion). 0 means 1.0.
	Scale float64
	// UniqueLabels is false for schemes with the documented LSDX
	// uniqueness defect; their order verification is reported, not
	// asserted.
	UniqueLabels bool
	// InMatrix marks the twelve schemes that appear in the published
	// Figure 7 (extras like CDBS, Com-D, Prime and DDE are measured
	// but have no published row).
	InMatrix bool
}
