package containment

import (
	"errors"
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/xmltree"
)

// IntervalConfig parameterises a begin/end interval labeling.
type IntervalConfig struct {
	// Name of the scheme (e.g. "xrel", "interval-gap16", "qed-range").
	Name string
	// Algebra supplies the ordered endpoint codes. Integer algebras give
	// the classic containment schemes; QED/vector algebras give the
	// orthogonal mountings of §5.1.
	Algebra labels.Algebra
	// WithLevel stores the nesting depth in the label, enabling the
	// parent-child evaluation (§3.1.1: "by incorporating the level
	// information ... this labelling scheme permits the evaluation of
	// the parent-child axis").
	WithLevel bool
	// LevelBits is the storage cost charged for the level field
	// (default 8 when WithLevel).
	LevelBits int
}

// IntervalLabel is a begin/end region label, optionally with level.
type IntervalLabel struct {
	Begin, End labels.Code
	Lvl        int
	withLevel  bool
	levelBits  int
}

// String renders "begin:end" (with level when present).
func (l IntervalLabel) String() string {
	if l.withLevel {
		return fmt.Sprintf("%s:%s@%d", l.Begin, l.End, l.Lvl)
	}
	return fmt.Sprintf("%s:%s", l.Begin, l.End)
}

// Bits implements labeling.Label.
func (l IntervalLabel) Bits() int {
	b := l.Begin.Bits() + l.End.Bits()
	if l.withLevel {
		b += l.levelBits
	}
	return b
}

// Interval is a containment labeling over an arbitrary code algebra.
type Interval struct {
	cfg   IntervalConfig
	doc   *xmltree.Document
	lab   map[*xmltree.Node]IntervalLabel
	stats labeling.Stats
}

// NewInterval returns an unbound interval labeling. With WithLevel set
// the returned labeling additionally implements labeling.ParentByLabel
// and labeling.LevelByLabel; without it, only the ancestor-descendant
// relationship is decidable from the labels (the Partial XPath grade of
// schemes like Sector and QRS).
func NewInterval(cfg IntervalConfig) labeling.Interface {
	if cfg.WithLevel && cfg.LevelBits == 0 {
		cfg.LevelBits = 8
	}
	iv := &Interval{cfg: cfg, lab: make(map[*xmltree.Node]IntervalLabel)}
	if cfg.WithLevel {
		return &LevelledInterval{Interval: iv}
	}
	return iv
}

// LevelledInterval is an interval labeling that stores levels, enabling
// the parent-child evaluation of §3.1.1.
type LevelledInterval struct {
	*Interval
}

// IsParent implements labeling.ParentByLabel.
func (li *LevelledInterval) IsParent(p, c labeling.Label) bool {
	lp, lc := p.(IntervalLabel), c.(IntervalLabel)
	return li.IsAncestor(p, c) && lp.Lvl == lc.Lvl-1
}

// Level implements labeling.LevelByLabel.
func (li *LevelledInterval) Level(l labeling.Label) (int, bool) {
	return l.(IntervalLabel).Lvl, true
}

// Name implements labeling.Interface.
func (iv *Interval) Name() string { return iv.cfg.Name }

// Stats implements labeling.Interface.
func (iv *Interval) Stats() *labeling.Stats { return &iv.stats }

// Algebra exposes the endpoint algebra (orthogonality probe).
func (iv *Interval) Algebra() labels.Algebra { return iv.cfg.Algebra }

// Build implements labeling.Interface: a depth-first traversal assigns
// each labellable node a begin code at first visit and an end code after
// its labellable descendants (paper §3.1.1: "each non-leaf node will be
// traversed twice").
func (iv *Interval) Build(doc *xmltree.Document) error {
	iv.doc = doc
	n := doc.LabelledCount()
	codes, err := iv.cfg.Algebra.Assign(2 * n)
	if err != nil {
		return fmt.Errorf("interval %s: assign %d endpoints: %w", iv.cfg.Name, 2*n, err)
	}
	iv.lab = make(map[*xmltree.Node]IntervalLabel, n)
	iv.stats.Reset()
	i := 0
	var walk func(x *xmltree.Node)
	walk = func(x *xmltree.Node) {
		labelled := x.Kind() == xmltree.KindElement || x.Kind() == xmltree.KindAttribute
		var begin labels.Code
		if labelled {
			begin = codes[i]
			i++
		}
		for _, a := range x.Attributes() {
			walk(a)
		}
		for _, c := range x.Children() {
			walk(c)
		}
		if labelled {
			end := codes[i]
			i++
			iv.lab[x] = IntervalLabel{
				Begin: begin, End: end, Lvl: x.Depth(),
				withLevel: iv.cfg.WithLevel, levelBits: iv.cfg.LevelBits,
			}
			iv.stats.Assigned++
		}
	}
	walk(doc.Node())
	return nil
}

// Label implements labeling.Interface.
func (iv *Interval) Label(n *xmltree.Node) labeling.Label {
	l, ok := iv.lab[n]
	if !ok {
		return nil
	}
	return l
}

// Compare implements labeling.Interface: document order is begin-code
// order (ancestors open their interval before descendants).
func (iv *Interval) Compare(a, b labeling.Label) int {
	return iv.cfg.Algebra.Compare(a.(IntervalLabel).Begin, b.(IntervalLabel).Begin)
}

// IsAncestor implements labeling.AncestorByLabel: u.begin < v.begin and
// v.end < u.end — "the interval of u contains the interval of v".
func (iv *Interval) IsAncestor(a, d labeling.Label) bool {
	la, ld := a.(IntervalLabel), d.(IntervalLabel)
	return iv.cfg.Algebra.Compare(la.Begin, ld.Begin) < 0 &&
		iv.cfg.Algebra.Compare(ld.End, la.End) < 0
}

// NodeInserted implements labeling.Interface. The new node's interval is
// carved out of the free region between its labelled neighbours; if the
// algebra has no room the entire document is renumbered (containment
// schemes follow global order, so "a significant number of labels may
// need to be recomputed when a node is inserted" — §3.1.1).
func (iv *Interval) NodeInserted(n *xmltree.Node) error {
	lo, hi, err := iv.bounds(n)
	if err != nil {
		return err
	}
	begin, err1 := iv.cfg.Algebra.Between(lo, hi)
	var end labels.Code
	var err2 error
	if err1 == nil {
		end, err2 = iv.cfg.Algebra.Between(begin, hi)
	}
	if err1 == nil && err2 == nil {
		iv.lab[n] = IntervalLabel{
			Begin: begin, End: end, Lvl: n.Depth(),
			withLevel: iv.cfg.WithLevel, levelBits: iv.cfg.LevelBits,
		}
		iv.stats.Assigned++
		return nil
	}
	firstErr := err1
	if firstErr == nil {
		firstErr = err2
	}
	if errors.Is(firstErr, labels.ErrNeedRelabel) || errors.Is(firstErr, labels.ErrOverflow) {
		return iv.renumber(firstErr)
	}
	return fmt.Errorf("interval %s: insert: %w", iv.cfg.Name, firstErr)
}

// bounds computes the codes that the new node's interval must fit
// between: the end of the preceding labelled sibling (or the parent's
// begin) and the begin of the following labelled sibling (or the
// parent's end).
func (iv *Interval) bounds(n *xmltree.Node) (lo, hi labels.Code, err error) {
	parent := xmltree.LabelledParent(n)
	var parentNode *xmltree.Node
	if parent != nil {
		parentNode = parent
	} else {
		parentNode = iv.doc.Node()
	}
	siblings := xmltree.LabelledChildren(parentNode)
	idx := -1
	for i, s := range siblings {
		if s == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, nil, fmt.Errorf("interval %s: node %q not among siblings", iv.cfg.Name, n.Name())
	}
	if idx > 0 {
		if l, ok := iv.lab[siblings[idx-1]]; ok {
			lo = l.End
		}
	}
	if lo == nil && parent != nil {
		if l, ok := iv.lab[parent]; ok {
			lo = l.Begin
		}
	}
	if idx+1 < len(siblings) {
		if l, ok := iv.lab[siblings[idx+1]]; ok {
			hi = l.Begin
		}
	}
	if hi == nil && parent != nil {
		if l, ok := iv.lab[parent]; ok {
			hi = l.End
		}
	}
	return lo, hi, nil
}

// renumber rebuilds every interval after an exhausted gap, counting the
// relabelled nodes.
func (iv *Interval) renumber(cause error) error {
	saved := iv.stats
	saved.RelabelEvents++
	if errors.Is(cause, labels.ErrOverflow) {
		saved.OverflowEvents++
	}
	old := iv.lab
	if err := iv.Build(iv.doc); err != nil {
		saved.OverflowEvents++
		iv.stats = saved
		return fmt.Errorf("interval %s: renumber: %w", iv.cfg.Name, err)
	}
	// Build reset the stats; restore the cumulative view.
	relabelled := int64(0)
	for n, l := range iv.lab {
		if o, ok := old[n]; ok && o.String() != l.String() {
			relabelled++
		}
	}
	saved.Assigned++ // the newly inserted node
	saved.Relabeled += relabelled
	iv.stats = saved
	return nil
}

// NodeDeleting implements labeling.Interface. Intervals of surviving
// nodes keep their codes: deletion never disturbs containment order.
func (iv *Interval) NodeDeleting(n *xmltree.Node) {
	delete(iv.lab, n)
	for _, a := range n.Attributes() {
		delete(iv.lab, a)
	}
	for _, c := range n.Children() {
		if c.Kind() == xmltree.KindElement {
			iv.NodeDeleting(c)
		}
	}
}
