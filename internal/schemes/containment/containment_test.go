package containment_test

import (
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/containment"
	"xmldyn/internal/schemes/qed"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestFigure1PrePostLabels verifies the XPath Accelerator labels against
// the paper's Figure 1(b).
func TestFigure1PrePostLabels(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := containment.NewPrePost()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"book": "0,9", "title": "1,1", "genre": "2,0", "author": "3,2",
		"publisher": "4,8", "editor": "5,5", "name": "6,3",
		"address": "7,4", "edition": "8,7", "year": "9,6",
	}
	doc.WalkLabelled(func(n *xmltree.Node) bool {
		if got := lab.Label(n).String(); got != want[n.Name()] {
			t.Errorf("%s: got %s, want %s", n.Name(), got, want[n.Name()])
		}
		return true
	})
}

func TestPrePostDietzProperty(t *testing.T) {
	doc := xmltree.Generate(xmltree.GenOptions{Seed: 5, MaxDepth: 4, MaxChildren: 5, AttrProb: 0.3})
	lab := containment.NewPrePost()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	nodes := doc.LabelledNodes()
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			got := lab.IsAncestor(lab.Label(u), lab.Label(v))
			if got != u.IsAncestorOf(v) {
				t.Fatalf("IsAncestor(%s,%s)=%v, truth %v", u.Name(), v.Name(), got, u.IsAncestorOf(v))
			}
		}
	}
}

func TestPrePostParentAndLevel(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := containment.NewPrePost()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	editor := lab.Label(doc.FindElement("editor"))
	name := lab.Label(doc.FindElement("name"))
	publisher := lab.Label(doc.FindElement("publisher"))
	if !lab.IsParent(editor, name) {
		t.Error("editor should be parent of name")
	}
	if lab.IsParent(publisher, name) {
		t.Error("publisher is grandparent, not parent, of name")
	}
	if lvl, ok := lab.Level(name); !ok || lvl != 3 {
		t.Errorf("name level = %d/%v", lvl, ok)
	}
}

// TestPrePostGlobalRelabelling verifies the §3.1 claim that global order
// is unsuitable for dynamic documents: one front insertion moves the
// ranks of every following node.
func TestPrePostGlobalRelabelling(t *testing.T) {
	doc := xmltree.GenerateWide(50)
	s, err := update.NewSession(doc, containment.NewPrePost())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertFirstChild(doc.Root(), "front"); err != nil {
		t.Fatal(err)
	}
	st := s.Labeling().Stats()
	// All 50 prior children shift (pre and post ranks), and the root's
	// post rank moves too.
	if st.Relabeled < 50 {
		t.Errorf("relabelled = %d, want >= 50", st.Relabeled)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalXRelStyle(t *testing.T) {
	alg := labels.MustIntAlgebra(labels.IntAlgebraConfig{
		Name: "xrel-int", Start: 1, Gap: 1, Width: 32, Floor: 1,
	})
	lab := containment.NewInterval(containment.IntervalConfig{
		Name: "xrel", Algebra: alg, WithLevel: true,
	}).(*containment.LevelledInterval)
	doc := xmltree.SampleBook()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	if err := labeling.VerifyOrder(lab, doc); err != nil {
		t.Fatal(err)
	}
	book := lab.Label(doc.FindElement("book"))
	name := lab.Label(doc.FindElement("name"))
	editor := lab.Label(doc.FindElement("editor"))
	if !lab.IsAncestor(book, name) || lab.IsAncestor(name, book) {
		t.Error("interval ancestor test failed")
	}
	if !lab.IsParent(editor, name) {
		t.Error("interval parent test failed")
	}
	if lvl, ok := lab.Level(name); !ok || lvl != 3 {
		t.Errorf("interval level = %d/%v", lvl, ok)
	}
	// The level-less variant must not advertise the capabilities.
	plain := containment.NewInterval(containment.IntervalConfig{Name: "plain", Algebra: alg})
	if _, ok := plain.(labeling.ParentByLabel); ok {
		t.Error("level-less interval must not implement ParentByLabel")
	}
	if _, ok := plain.(labeling.LevelByLabel); ok {
		t.Error("level-less interval must not implement LevelByLabel")
	}
}

// TestIntervalDenseRenumbers: with gap 1 every insertion exhausts the
// region immediately and triggers a global renumbering.
func TestIntervalDenseRenumbers(t *testing.T) {
	alg := labels.MustIntAlgebra(labels.IntAlgebraConfig{
		Name: "dense-int", Start: 1, Gap: 1, Width: 32, Floor: 1,
	})
	lab := containment.NewInterval(containment.IntervalConfig{Name: "dense", Algebra: alg})
	doc := xmltree.GenerateWide(20)
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertFirstChild(doc.Root(), "x"); err != nil {
		t.Fatal(err)
	}
	st := lab.Stats()
	if st.RelabelEvents == 0 || st.Relabeled == 0 {
		t.Fatalf("dense interval should renumber: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalGapPostponesRelabelling reproduces the §3.1.1 claim about
// the gap extensions [17,9,11]: gaps absorb a few insertions and "only
// postpone the relabelling process until the interval gaps have been
// consumed".
func TestIntervalGapPostponesRelabelling(t *testing.T) {
	alg := labels.MustIntAlgebra(labels.IntAlgebraConfig{
		Name: "gap16", Start: 16, Gap: 16, Width: 32, Floor: 1, Midpoint: true,
	})
	lab := containment.NewInterval(containment.IntervalConfig{Name: "interval-gap16", Algebra: alg})
	doc := xmltree.GenerateWide(4)
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	ref := doc.Root().Children()[1]
	insertions := 0
	for i := 0; i < 40; i++ {
		if _, err := s.InsertAfter(ref, "k"); err != nil {
			t.Fatal(err)
		}
		insertions++
		if lab.Stats().RelabelEvents > 0 {
			break
		}
	}
	st := lab.Stats()
	if st.RelabelEvents == 0 {
		t.Fatal("gap never exhausted in 40 skewed insertions")
	}
	if insertions < 2 {
		t.Fatalf("gap absorbed only %d insertions; expected a postponement", insertions)
	}
	t.Logf("gap of 16 absorbed %d skewed insertions before renumbering", insertions-1)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalOrthogonalQEDMount: mounting QED codes as interval
// endpoints keeps insertions relabel-free — the §5.1 orthogonality
// property in action.
func TestIntervalOrthogonalQEDMount(t *testing.T) {
	lab := qed.NewRange()
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	for i := 0; i < 50; i++ {
		if _, err := s.InsertAfter(c1, "n"); err != nil {
			t.Fatal(err)
		}
	}
	if st := lab.Stats(); st.Relabeled != 0 || st.RelabelEvents != 0 {
		t.Fatalf("QED-range relabelled: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Ancestor evaluation must survive the storm.
	type ancestorLab interface {
		IsAncestor(a, d labeling.Label) bool
	}
	al := lab.(ancestorLab)
	c := doc.FindElement("c")
	for _, k := range c.Children() {
		if !al.IsAncestor(lab.Label(c), lab.Label(k)) {
			t.Fatalf("lost containment for %s", k.Name())
		}
	}
}

func TestIntervalDeletionKeepsOrder(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := containment.NewPrePost()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(doc.FindElement("editor")); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if lab.Label(doc.FindElement("edition")) == nil {
		t.Fatal("surviving node lost its label")
	}
}
