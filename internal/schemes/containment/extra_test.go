package containment_test

import (
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/schemes/containment"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

func TestNewXRelProperties(t *testing.T) {
	lab := containment.NewXRel()
	if lab.Name() != "xrel" {
		t.Errorf("name: %s", lab.Name())
	}
	doc := xmltree.SampleBook()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	// Dense numbering: the very first interior insertion renumbers.
	if _, err := s.InsertFirstChild(doc.Root(), "front"); err != nil {
		t.Fatal(err)
	}
	if st := lab.Stats(); st.Relabeled == 0 {
		t.Error("XRel should renumber on front insertion")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Level capability present (XRel stores paths; our model levels).
	if _, ok := lab.(labeling.LevelByLabel); !ok {
		t.Error("XRel should expose levels")
	}
}

func TestNewGapIntervalAbsorbsThenRenumbers(t *testing.T) {
	lab := containment.NewGapInterval(64)
	doc := xmltree.GenerateWide(4)
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	ref := doc.Root().Children()[2]
	absorbed := 0
	for i := 0; i < 50; i++ {
		if _, err := s.InsertBefore(ref, "g"); err != nil {
			t.Fatal(err)
		}
		if lab.Stats().RelabelEvents > 0 {
			break
		}
		absorbed++
	}
	if absorbed < 2 || absorbed >= 50 {
		t.Fatalf("gap absorbed %d insertions", absorbed)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFollowingCount(t *testing.T) {
	doc := xmltree.SampleBook()
	pp := containment.NewPrePost()
	if err := pp.Build(doc); err != nil {
		t.Fatal(err)
	}
	editor := pp.Label(doc.FindElement("editor"))
	// Following editor in the plane: edition and year (attribute
	// nodes participate in the rank plane).
	if got := pp.FollowingCount(editor); got != 2 {
		t.Errorf("following count: %d, want 2", got)
	}
	book := pp.Label(doc.FindElement("book"))
	if got := pp.FollowingCount(book); got != 0 {
		t.Errorf("book following count: %d", got)
	}
}

func TestLevelledIntervalExposesAlgebra(t *testing.T) {
	// The levelled wrapper must still expose the embedded interval's
	// algebra for the framework's division/recursion instrumentation.
	lab, ok := containment.NewXRel().(*containment.LevelledInterval)
	if !ok {
		t.Fatal("XRel is not a LevelledInterval")
	}
	if lab.Algebra() == nil {
		t.Fatal("algebra not exposed")
	}
}

func TestIntervalLabelRendering(t *testing.T) {
	doc := xmltree.SampleBook()
	withLevel := containment.NewXRel()
	if err := withLevel.Build(doc); err != nil {
		t.Fatal(err)
	}
	l := withLevel.Label(doc.FindElement("editor")).String()
	if l == "" {
		t.Fatal("empty rendered label")
	}
	// Levelled labels render with the @depth suffix.
	if want := "@2"; l[len(l)-2:] != want {
		t.Errorf("label %q should end with %q", l, want)
	}
}
