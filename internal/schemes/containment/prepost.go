// Package containment implements the containment (interval / region
// encoded) labelling schemes of the paper's §3.1.1: the pre/post plane of
// the XPath Accelerator [9] and generic begin/end interval labelings over
// a pluggable code algebra (XRel [30], structural joins [1, 31], the
// gap-allocation extensions [17, 11], and — via the orthogonality
// property — QED-range and vector-range mountings).
package containment

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/xmltree"
)

// PrePostLabel is the XPath Accelerator label: preorder rank, postorder
// rank and level. Node u is an ancestor of v iff pre(u) < pre(v) and
// post(u) > post(v) (Dietz [6]); adding the level enables the
// parent-child test. The sibling relationship is not decidable from the
// label alone, which is why the paper grades the scheme Partial on XPath
// Evaluations.
type PrePostLabel struct {
	Pre, Post int64
	Lvl       int
}

// String renders the label as the "pre,post" pairs of Figure 1(b).
func (l PrePostLabel) String() string { return fmt.Sprintf("%d,%d", l.Pre, l.Post) }

// Bits implements labeling.Label: two fixed 32-bit ranks plus an 8-bit
// level, the flat encoding the paper classifies as Fixed.
func (l PrePostLabel) Bits() int { return 32 + 32 + 8 }

// PrePost is the XPath Accelerator labeling. Every structural update
// renumbers the traversal ranks; the relabelling cost it accrues is the
// paper's argument for why global order is "unsuitable for a dynamic
// labelling scheme" (§3.1).
type PrePost struct {
	doc   *xmltree.Document
	lab   map[*xmltree.Node]PrePostLabel
	stats labeling.Stats
}

// NewPrePost returns an unbound XPath Accelerator labeling.
func NewPrePost() *PrePost {
	return &PrePost{lab: make(map[*xmltree.Node]PrePostLabel)}
}

// Name implements labeling.Interface.
func (pp *PrePost) Name() string { return "xpath-accelerator" }

// Stats implements labeling.Interface.
func (pp *PrePost) Stats() *labeling.Stats { return &pp.stats }

// Build implements labeling.Interface.
func (pp *PrePost) Build(doc *xmltree.Document) error {
	pp.doc = doc
	pp.lab = make(map[*xmltree.Node]PrePostLabel, doc.LabelledCount())
	pp.renumber(true)
	return nil
}

// renumber recomputes all ranks. When counting, labels that change (for
// pre-existing nodes) increment Relabeled.
func (pp *PrePost) renumber(initial bool) {
	pre := pp.doc.PreRank()
	post := pp.doc.PostRank()
	fresh := make(map[*xmltree.Node]PrePostLabel, len(pre))
	changed := int64(0)
	pp.doc.WalkLabelled(func(n *xmltree.Node) bool {
		l := PrePostLabel{Pre: int64(pre[n]), Post: int64(post[n]), Lvl: n.Depth()}
		if !initial {
			if old, ok := pp.lab[n]; ok && old != l {
				changed++
			} else if !ok {
				pp.stats.Assigned++
			}
		} else {
			pp.stats.Assigned++
		}
		fresh[n] = l
		return true
	})
	if changed > 0 {
		pp.stats.Relabeled += changed
		pp.stats.RelabelEvents++
	}
	pp.lab = fresh
}

// Label implements labeling.Interface.
func (pp *PrePost) Label(n *xmltree.Node) labeling.Label {
	l, ok := pp.lab[n]
	if !ok {
		return nil
	}
	return l
}

// Compare implements labeling.Interface: document order is preorder rank
// order (global order).
func (pp *PrePost) Compare(a, b labeling.Label) int {
	la, lb := a.(PrePostLabel), b.(PrePostLabel)
	switch {
	case la.Pre < lb.Pre:
		return -1
	case la.Pre > lb.Pre:
		return 1
	default:
		return 0
	}
}

// IsAncestor implements labeling.AncestorByLabel via the pre/post plane.
func (pp *PrePost) IsAncestor(a, d labeling.Label) bool {
	la, ld := a.(PrePostLabel), d.(PrePostLabel)
	return la.Pre < ld.Pre && la.Post > ld.Post
}

// IsParent implements labeling.ParentByLabel: ancestor at exactly one
// level up.
func (pp *PrePost) IsParent(p, c labeling.Label) bool {
	lp, lc := p.(PrePostLabel), c.(PrePostLabel)
	return pp.IsAncestor(p, c) && lp.Lvl == lc.Lvl-1
}

// Level implements labeling.LevelByLabel.
func (pp *PrePost) Level(l labeling.Label) (int, bool) {
	return l.(PrePostLabel).Lvl, true
}

// NodeInserted implements labeling.Interface: a structural insert shifts
// the ranks of every node after the insertion point, so the whole
// document is renumbered and the moved labels are counted.
func (pp *PrePost) NodeInserted(n *xmltree.Node) error {
	pp.renumber(false)
	if _, ok := pp.lab[n]; !ok {
		return fmt.Errorf("xpath-accelerator: inserted node %q not reachable", n.Name())
	}
	return nil
}

// NodeDeleting implements labeling.Interface.
func (pp *PrePost) NodeDeleting(n *xmltree.Node) {
	delete(pp.lab, n)
	for _, a := range n.Attributes() {
		delete(pp.lab, a)
	}
	for _, c := range n.Children() {
		if c.Kind() == xmltree.KindElement {
			pp.NodeDeleting(c)
		}
	}
	// Remaining nodes keep stale ranks until the next insertion; order
	// among surviving nodes is preserved, which is all deletion needs
	// (paper §3.1: deletions do not disturb document order).
}

// FollowingCount answers the Grust-style region query "how many labelled
// nodes follow u in document order" from the label plane; exposed for the
// XPath axis engine's use of the accelerator.
func (pp *PrePost) FollowingCount(u labeling.Label) int {
	lu := u.(PrePostLabel)
	count := 0
	for _, l := range pp.lab {
		if l.Pre > lu.Pre && l.Post > lu.Post {
			count++
		}
	}
	return count
}
