package containment

import (
	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
)

// NewXRel returns the XRel labeling [30]: begin/end document-position
// intervals with level, densely numbered — a path-based relational
// storage scheme whose region coordinates shift on every insertion
// (global order, fixed encoding, not persistent).
func NewXRel() labeling.Interface {
	return NewInterval(IntervalConfig{
		Name: "xrel",
		Algebra: labels.MustIntAlgebra(labels.IntAlgebraConfig{
			Name: "xrel-int", Start: 1, Gap: 1, Width: 32, Floor: 1,
		}),
		WithLevel: true,
	})
}

// NewGapInterval returns a containment labeling with sparse endpoint
// allocation: the gap extensions of [17, 9, 11] that "permit gaps in the
// labelling schemes to facilitate future insertions gracefully" but
// "only postpone the relabelling process" (§3.1.1). Used by experiment
// C1.
func NewGapInterval(gap int64) labeling.Interface {
	return NewInterval(IntervalConfig{
		Name: "interval-gap",
		Algebra: labels.MustIntAlgebra(labels.IntAlgebraConfig{
			Name: "gap-int", Start: gap, Gap: gap, Width: 40, Floor: 1, Midpoint: true,
		}),
		WithLevel: true,
	})
}
