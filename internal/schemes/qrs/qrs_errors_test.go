package qrs

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
)

func TestAlgebraMetadata(t *testing.T) {
	a := NewAlgebra()
	if a.Name() != "qrs" {
		t.Errorf("name: %s", a.Name())
	}
	tr := a.Traits()
	if tr.DivisionFree || tr.OverflowFree || tr.Orthogonal || tr.RecursiveInit {
		t.Errorf("traits: %+v", tr)
	}
	if tr.Encoding != labels.RepFixed {
		t.Errorf("encoding: %v", tr.Encoding)
	}
}

func TestBetweenEdges(t *testing.T) {
	a := NewAlgebra()
	// Empty bounds.
	m, err := a.Between(nil, nil)
	if err != nil || float64(m.(Code)) != 1 {
		t.Errorf("empty bounds: %v %v", m, err)
	}
	// After last: +1, no division.
	m, err = a.Between(Code(7), nil)
	if err != nil || float64(m.(Code)) != 8 {
		t.Errorf("after last: %v %v", m, err)
	}
	// Before first: midpoint of (0, r).
	m, err = a.Between(nil, Code(8))
	if err != nil || float64(m.(Code)) != 4 {
		t.Errorf("before first: %v %v", m, err)
	}
	// Misorder.
	if _, err := a.Between(Code(5), Code(4)); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("misorder: %v", err)
	}
	// Foreign codes.
	if _, err := a.Between(labels.QString("2"), nil); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign left: %v", err)
	}
	if _, err := a.Between(nil, labels.QString("2")); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign right: %v", err)
	}
}

func TestCompareAndBits(t *testing.T) {
	a := NewAlgebra()
	if a.Compare(Code(1), Code(2)) != -1 || a.Compare(Code(2), Code(1)) != 1 || a.Compare(Code(1), Code(1)) != 0 {
		t.Error("compare")
	}
	if Code(1.5).Bits() != 64 {
		t.Error("bits")
	}
	if Code(0.5).String() != "0.5" {
		t.Errorf("render: %s", Code(0.5))
	}
	if zero, err := a.Assign(0); err != nil || len(zero) != 0 {
		t.Errorf("Assign(0): %v %v", zero, err)
	}
}
