package qrs

import (
	"errors"
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestFloatPrecisionExhaustion reproduces the paper's §3.1.1 critique:
// float midpoints stop separating after ~52 skewed insertions (the
// float64 mantissa width), after which QRS behaves like sparse integer
// allocation and must relabel.
func TestFloatPrecisionExhaustion(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	l, r := cs[0], cs[1]
	exhaustedAt := 0
	for i := 1; i <= 100; i++ {
		m, err := a.Between(l, r)
		if err != nil {
			if errors.Is(err, labels.ErrNeedRelabel) {
				exhaustedAt = i
				break
			}
			t.Fatal(err)
		}
		r = m
	}
	if exhaustedAt == 0 {
		t.Fatal("float precision never exhausted in 100 skewed insertions")
	}
	if exhaustedAt < 45 || exhaustedAt > 60 {
		t.Errorf("exhausted at insertion %d, expected ~52 (mantissa width)", exhaustedAt)
	}
	if a.Counters().Divisions == 0 {
		t.Error("midpoint divisions not counted")
	}
}

func TestSessionRenumbersAfterExhaustion(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	for i := 0; i < 80; i++ {
		if _, err := s.InsertAfter(c1, "f"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := s.Labeling().Stats()
	if st.RelabelEvents == 0 {
		t.Fatal("QRS should have renumbered at least once in 80 skewed insertions")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderAndAncestry(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	if err := labeling.VerifyOrder(lab, doc); err != nil {
		t.Fatal(err)
	}
	type ancestorLab interface {
		IsAncestor(a, d labeling.Label) bool
	}
	al := lab.(ancestorLab)
	book := lab.Label(doc.FindElement("book"))
	name := lab.Label(doc.FindElement("name"))
	if !al.IsAncestor(book, name) || al.IsAncestor(name, book) {
		t.Error("float interval ancestry failed")
	}
}
