// Package qrs implements the QRS robust numbering scheme of Amagasa,
// Yoshikawa & Uemura [2] (paper §3.1.1): containment labels whose
// endpoints are real (floating point) numbers, so that a midpoint always
// exists between two labels — in theory. The paper's critique is that
// "computers represent floating point numbers with a fixed number of
// bits and thus in practice the solution is similar to an integer
// representation with sparse allocation": after ~52 skewed insertions
// the float64 mantissa is exhausted and the scheme must relabel. This
// package reproduces exactly that behaviour (claim C1).
package qrs

import (
	"fmt"
	"strconv"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/containment"
)

// Code is a float64 endpoint.
type Code float64

// String renders the float with enough digits to distinguish neighbours.
func (c Code) String() string { return strconv.FormatFloat(float64(c), 'g', -1, 64) }

// Bits implements labels.Code: one IEEE-754 double.
func (c Code) Bits() int { return 64 }

// Algebra is the QRS float endpoint algebra.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "qrs" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra. Midpoints are true floating-point
// divisions; the published matrix grades QRS compliant on division —
// EXPERIMENTS.md records the divergence our instrumentation measures.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepFixed,
		DivisionFree:  false,
		RecursiveInit: false,
		OverflowFree:  false,
		Orthogonal:    false,
	}
}

// Assign implements labels.Algebra: whole numbers 1..n.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	if n <= 0 {
		return nil, nil
	}
	out := make([]labels.Code, n)
	for i := 0; i < n; i++ {
		out[i] = Code(float64(i + 1))
	}
	return out, nil
}

// Between implements labels.Algebra: the float midpoint, failing with
// ErrNeedRelabel once the mantissa can no longer separate the bounds.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	var l, r float64
	hasL, hasR := left != nil, right != nil
	if hasL {
		lc, ok := left.(Code)
		if !ok {
			return nil, fmt.Errorf("%w: %T is not a QRS code", labels.ErrBadCode, left)
		}
		l = float64(lc)
	}
	if hasR {
		rc, ok := right.(Code)
		if !ok {
			return nil, fmt.Errorf("%w: %T is not a QRS code", labels.ErrBadCode, right)
		}
		r = float64(rc)
	}
	switch {
	case !hasL && !hasR:
		return Code(1), nil
	case !hasL:
		l = 0
	case !hasR:
		return Code(l + 1), nil
	}
	if l >= r {
		return nil, fmt.Errorf("%w: %v not before %v", labels.ErrBadCode, l, r)
	}
	a.counters.Divisions++
	mid := (l + r) / 2
	if mid <= l || mid >= r {
		// Mantissa exhausted: "in practice the solution is similar to an
		// integer representation of labels with sparse allocation".
		a.counters.RelabelErrors++
		return nil, fmt.Errorf("%w: float precision exhausted between %v and %v", labels.ErrNeedRelabel, l, r)
	}
	return Code(mid), nil
}

// Compare implements labels.Algebra.
func (a *Algebra) Compare(x, y labels.Code) int {
	cx, cy := float64(x.(Code)), float64(y.(Code))
	switch {
	case cx < cy:
		return -1
	case cx > cy:
		return 1
	default:
		return 0
	}
}

// New returns a QRS labeling: float-endpoint containment intervals.
func New() labeling.Interface {
	return containment.NewInterval(containment.IntervalConfig{
		Name:    "qrs",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh QRS instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
