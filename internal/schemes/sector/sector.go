// Package sector implements the concise sector labelling scheme of
// Thonangi [23] (paper §3.1.1): a containment variant that assigns each
// node a sector — an angular sub-range of its parent's sector on a
// fixed-point circle — instead of a begin/end interval, with
// ancestor-descendant and document-order relationships decided by range
// formulae. We realise the sectors as fixed-point integer ranges
// subdivided by shifts (no divisions); DESIGN.md §5 records the
// substitution. As a fixed-width scheme it is subject to the overflow
// problem and relabels when a sector is exhausted.
package sector

import (
	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/containment"
)

// Width is the fixed-point resolution of the sector circle.
const Width = 40

// Gap is the initial angular spacing between consecutive endpoints.
const Gap = 1 << 18

// NewAlgebra returns the sector endpoint algebra: fixed-point angles
// with shift-computed midpoints.
func NewAlgebra() *labels.IntAlgebra {
	return labels.MustIntAlgebra(labels.IntAlgebraConfig{
		Name:     "sector-fixedpoint",
		Start:    Gap,
		Gap:      Gap,
		Width:    Width,
		Midpoint: true,
		Floor:    1,
	})
}

// New returns a sector labeling: containment over fixed-point angular
// ranges without level information (the scheme does not encode levels,
// hence its Partial XPath grading in Figure 7).
func New() labeling.Interface {
	return containment.NewInterval(containment.IntervalConfig{
		Name:    "sector",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh sector instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
