// Package vector implements the vector labelling scheme of Xu, Bao &
// Ling [27] (paper §3.1.2/§4): positional identifiers are integer
// vectors (x, y) ordered by the gradient y/x, with order decided by
// cross multiplication — G(A) > G(B) iff yA*xB > xA*yB — so no division
// is ever computed. Bulk loading recursively assigns mediants between
// the virtual bounds (1,0) and (0,1); insertion between neighbours is
// the vector sum, which never disturbs existing labels. Components are
// stored with the UTF-8-style variable-length codec whose 2^21 ceiling
// the paper questions; crossing it surfaces as ErrOverflow, making the
// critique measurable (claim C6).
package vector

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/containment"
	"xmldyn/internal/schemes/prefix"
)

// Code is a vector positional identifier with positive gradient
// ordering. The virtual bounds (1,0) and (0,1) are never assigned to
// nodes.
type Code struct {
	X, Y uint64
}

// String renders "(x,y)".
func (c Code) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Bits implements labels.Code: both components under the UTF-8-style
// codec; components beyond the 2^21 ceiling are charged the LEB128 cost
// a corrected codec would need (the comparison the paper invites).
func (c Code) Bits() int {
	total := 0
	for _, v := range [2]uint64{c.X, c.Y} {
		if v <= labels.MaxUTF8Value {
			b, _ := labels.UTF8StyleBits(uint32(v))
			total += b
		} else {
			total += 8 * len(labels.EncodeLEB128(v))
		}
	}
	return total
}

// gradLess reports G(a) < G(b) via cross multiplication.
func gradLess(a, b Code) bool { return a.Y*b.X < b.Y*a.X }

// Algebra is the vector code algebra.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "vector" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra: division-free (cross
// multiplication), recursive bulk assignment, overflow-free up to the
// UTF-8 codec ceiling, orthogonal.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepVariable,
		DivisionFree:  true,
		RecursiveInit: true,
		OverflowFree:  true,
		Orthogonal:    true,
	}
}

// virtual bounds of the gradient space.
var (
	boundLeft  = Code{X: 1, Y: 0}
	boundRight = Code{X: 0, Y: 1}
)

// mediant is the insertion primitive: the sum of the two bounding
// vectors lies strictly between them in gradient order.
func mediant(l, r Code) Code { return Code{X: l.X + r.X, Y: l.Y + r.Y} }

// Assign implements labels.Algebra: recursive mediants between the
// virtual bounds, mirroring the QED-style middle recursion the scheme's
// authors describe.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	if n <= 0 {
		return nil, nil
	}
	out := make([]labels.Code, n)
	depth := 0
	a.fill(out, 0, n, boundLeft, boundRight, 1, &depth)
	if depth > a.counters.MaxRecursion {
		a.counters.MaxRecursion = depth
	}
	for _, c := range out {
		v := c.(Code)
		if v.X > labels.MaxUTF8Value || v.Y > labels.MaxUTF8Value {
			a.counters.OverflowHits++
			return nil, fmt.Errorf("%w: vector component beyond the UTF-8 ceiling during bulk load", labels.ErrOverflow)
		}
	}
	return out, nil
}

// fill assigns positions [lo, hi) between the bounding vectors.
func (a *Algebra) fill(out []labels.Code, lo, hi int, l, r Code, d int, depth *int) {
	if *depth < d {
		*depth = d
	}
	if lo >= hi {
		return
	}
	mid := lo + (hi-lo)/2
	m := mediant(l, r)
	out[mid] = m
	a.fill(out, lo, mid, l, m, d+1, depth)
	a.fill(out, mid+1, hi, m, r, d+1, depth)
}

// Between implements labels.Algebra: the mediant of the neighbours
// (virtual bounds at the ends). The result fails with ErrOverflow once a
// component exceeds the UTF-8-style limit — the paper's §4 question made
// concrete.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, r := boundLeft, boundRight
	if left != nil {
		lc, ok := left.(Code)
		if !ok {
			return nil, fmt.Errorf("%w: %T is not a vector code", labels.ErrBadCode, left)
		}
		l = lc
	}
	if right != nil {
		rc, ok := right.(Code)
		if !ok {
			return nil, fmt.Errorf("%w: %T is not a vector code", labels.ErrBadCode, right)
		}
		r = rc
	}
	if !gradLess(l, r) {
		return nil, fmt.Errorf("%w: %s not before %s in gradient order", labels.ErrBadCode, l, r)
	}
	m := mediant(l, r)
	if m.X > labels.MaxUTF8Value || m.Y > labels.MaxUTF8Value {
		a.counters.OverflowHits++
		return nil, fmt.Errorf("%w: vector %s exceeds the UTF-8 delimiter ceiling (paper §4)", labels.ErrOverflow, m)
	}
	return m, nil
}

// Compare implements labels.Algebra by gradient cross multiplication.
func (a *Algebra) Compare(x, y labels.Code) int {
	cx, cy := x.(Code), y.(Code)
	lhs := cx.Y * cy.X
	rhs := cy.Y * cx.X
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// NewPrefix returns the vector scheme mounted as a prefix labeling
// (V-Prefix in the scheme's paper).
func NewPrefix() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:    "vector",
		Algebra: NewAlgebra(),
	})
}

// NewRange returns the vector scheme mounted as a containment labeling
// (V-Containment), demonstrating orthogonality.
func NewRange() labeling.Interface {
	return containment.NewInterval(containment.IntervalConfig{
		Name:    "vector-range",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh vector-prefix instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return NewPrefix() }
}
