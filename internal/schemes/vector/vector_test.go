package vector

import (
	"errors"
	"math/rand"
	"testing"

	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

func TestGradientOrder(t *testing.T) {
	a := NewAlgebra()
	// (1,0) < (2,1) < (1,1) < (1,2) < (0,1) in gradient order.
	seq := []Code{{2, 1}, {1, 1}, {1, 2}}
	for i := 1; i < len(seq); i++ {
		if a.Compare(seq[i-1], seq[i]) >= 0 {
			t.Fatalf("%s !< %s", seq[i-1], seq[i])
		}
	}
	if a.Compare(Code{3, 6}, Code{1, 2}) != 0 {
		t.Error("proportional vectors share a gradient")
	}
}

func TestMediantInsertion(t *testing.T) {
	a := NewAlgebra()
	m, err := a.Between(Code{1, 1}, Code{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.(Code) != (Code{2, 3}) {
		t.Errorf("mediant = %s, want (2,3)", m)
	}
	if a.Compare(Code{1, 1}, m) >= 0 || a.Compare(m, Code{1, 2}) >= 0 {
		t.Error("mediant not strictly between")
	}
}

func TestAssignAscending(t *testing.T) {
	a := NewAlgebra()
	for _, n := range []int{1, 2, 3, 10, 100} {
		cs, err := a.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != n {
			t.Fatalf("n=%d: %d codes", n, len(cs))
		}
		if i := labels.CheckAscending(cs, a.Compare); i != -1 {
			t.Fatalf("n=%d: unsorted at %d", n, i)
		}
	}
	if a.Counters().MaxRecursion == 0 {
		t.Error("vector bulk assignment should be recursive")
	}
}

// TestSkewedGrowthLogarithmicBits verifies the §4/§5 claim the paper
// highlights: "under skewed insertions ... the vector label growth rate
// is much slower than QED". 100 fixed-position insertions leave the
// label around two bytes per component.
func TestSkewedGrowthLogarithmicBits(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	l, r := cs[0], cs[1]
	for i := 0; i < 100; i++ {
		m, err := a.Between(l, r)
		if err != nil {
			t.Fatal(err)
		}
		r = m
	}
	if bits := r.(Code).Bits(); bits > 40 {
		t.Errorf("after 100 skewed insertions the vector needs %d bits; expected logarithmic growth (<=40)", bits)
	}
}

// TestUTF8CeilingOverflow reproduces the paper's §4 question about
// vector components beyond 2^21: our codec surfaces ErrOverflow.
func TestUTF8CeilingOverflow(t *testing.T) {
	a := NewAlgebra()
	big := Code{X: labels.MaxUTF8Value, Y: 1}
	// Inserting before-first adds the (1,0) bound: X crosses 2^21.
	_, err := a.Between(nil, big)
	if !errors.Is(err, labels.ErrOverflow) {
		t.Fatalf("want ErrOverflow past the UTF-8 ceiling, got %v", err)
	}
	if a.Counters().OverflowHits == 0 {
		t.Error("overflow not counted")
	}
}

func TestVectorPrefixSession(t *testing.T) {
	doc := xmltree.Generate(xmltree.GenOptions{Seed: 2, MaxDepth: 4, MaxChildren: 4, AttrProb: 0.3})
	s, err := update.NewSession(doc, NewPrefix())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 800; i++ {
		nodes := doc.LabelledNodes()
		ref := nodes[rng.Intn(len(nodes))]
		if ref.Kind() != xmltree.KindElement {
			continue
		}
		if ref != doc.Root() && rng.Intn(2) == 0 {
			if _, err := s.InsertBefore(ref, "v"); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := s.AppendChild(ref, "v"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := s.Labeling().Stats(); st.Relabeled != 0 {
		t.Fatalf("vector relabelled %d nodes", st.Relabeled)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRangeMountOrthogonal(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, NewRange())
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	for i := 0; i < 30; i++ {
		if _, err := s.InsertAfter(c1, "n"); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Labeling().Stats(); st.Relabeled != 0 {
		t.Fatalf("vector-range relabelled: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBitsChargesLEBPastCeiling(t *testing.T) {
	small := Code{X: 100, Y: 7}
	if small.Bits() != 16 {
		t.Errorf("small vector bits = %d, want 16", small.Bits())
	}
	huge := Code{X: 1 << 30, Y: 1}
	if huge.Bits() <= 16 {
		t.Errorf("huge vector bits = %d, expected LEB128 cost", huge.Bits())
	}
}
