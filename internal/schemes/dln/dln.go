// Package dln implements the Dynamic Level Numbering scheme of Böhme &
// Rahm [3] (paper §3.1.2): Dewey-style labels whose components are
// fixed-bit-length integers, with arbitrary insertions supported by
// appending sublevel values between two consecutive positional
// identifiers (rendered "2/1" for the first sublevel under position 2).
// The fixed component width means the scheme "may overflow and thus ...
// will succumb to the same limitations as the DeweyID scheme using
// sparse allocation of labels".
package dln

import (
	"fmt"
	"strconv"
	"strings"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/prefix"
)

// DefaultWidth is the component bit width used by New. Small enough that
// overflow is reachable in experiments, large enough for realistic
// documents (65534 siblings).
const DefaultWidth = 16

// Code is a DLN positional identifier: a primary position optionally
// extended by sublevel values. A proper sublevel extension orders after
// its base: 2 < 2/1 < 2/2 < 3.
type Code struct {
	vals  []uint64
	width int
}

// String renders the sublevel chain: "2", "2/1", "2/1/3".
func (c Code) String() string {
	parts := make([]string, len(c.vals))
	for i, v := range c.vals {
		parts[i] = strconv.FormatUint(v, 10)
	}
	return strings.Join(parts, "/")
}

// Bits implements labels.Code: each value occupies the fixed width plus
// one continuation bit marking whether a sublevel follows.
func (c Code) Bits() int { return len(c.vals) * (c.width + 1) }

// Algebra is the DLN code algebra for a given component width.
type Algebra struct {
	width    int
	counters labels.Counters
}

// NewAlgebra returns a DLN algebra with the given component bit width.
func NewAlgebra(width int) (*Algebra, error) {
	if width < 2 || width > 62 {
		return nil, fmt.Errorf("dln: width %d out of range (2..62)", width)
	}
	return &Algebra{width: width}, nil
}

// MustAlgebra panics on bad width (static constructors).
func MustAlgebra(width int) *Algebra {
	a, err := NewAlgebra(width)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return fmt.Sprintf("dln-%dbit", a.width) }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepFixed,
		DivisionFree:  true, // midpoints are shifts on the fixed grid
		RecursiveInit: false,
		OverflowFree:  false,
		Orthogonal:    false,
	}
}

func (a *Algebra) max() uint64 { return uint64(1)<<a.width - 1 }

// Assign implements labels.Algebra: positions 1..n at the primary level.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	if n <= 0 {
		return nil, nil
	}
	if uint64(n) > a.max() {
		a.counters.OverflowHits++
		return nil, fmt.Errorf("%w: %d siblings exceed the %d-bit component", labels.ErrOverflow, n, a.width)
	}
	out := make([]labels.Code, n)
	for i := 0; i < n; i++ {
		out[i] = Code{vals: []uint64{uint64(i + 1)}, width: a.width}
	}
	return out, nil
}

// Between implements labels.Algebra.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toCode(left, a.width)
	if err != nil {
		return nil, err
	}
	r, err := toCode(right, a.width)
	if err != nil {
		return nil, err
	}
	switch {
	case l.vals == nil && r.vals == nil:
		return Code{vals: []uint64{1}, width: a.width}, nil
	case l.vals == nil:
		// Before the first sibling: a smaller primary value if one is
		// free; sublevels only order *after* their base, so position 1
		// has no room before it and forces a relabel — DLN is not
		// persistent.
		if r.vals[0] > 1 {
			return Code{vals: []uint64{r.vals[0] - 1}, width: a.width}, nil
		}
		a.counters.RelabelErrors++
		return nil, fmt.Errorf("%w: no DLN position before %s", labels.ErrNeedRelabel, r)
	case r.vals == nil:
		// After the last sibling: bump the primary value.
		v := l.vals[0] + 1
		if v > a.max() {
			a.counters.OverflowHits++
			return nil, fmt.Errorf("%w: component %d exceeds %d bits", labels.ErrOverflow, v, a.width)
		}
		return Code{vals: []uint64{v}, width: a.width}, nil
	default:
		if compare(l, r) >= 0 {
			return Code{}, fmt.Errorf("%w: %s not before %s", labels.ErrBadCode, l, r)
		}
		return a.betweenCodes(l, r)
	}
}

func (a *Algebra) betweenCodes(l, r Code) (labels.Code, error) {
	i := 0
	for i < len(l.vals) && i < len(r.vals) && l.vals[i] == r.vals[i] {
		i++
	}
	if i < len(l.vals) && i < len(r.vals) {
		x, y := l.vals[i], r.vals[i]
		if y-x > 1 {
			// Free slot at this sublevel: take the midpoint (shift).
			return Code{vals: append(append([]uint64{}, l.vals[:i]...), x+(y-x)>>1), width: a.width}, nil
		}
		// Consecutive values at level i. Any code sharing l's prefix up
		// to and including level i stays below r, so grow inside l:
		// bump l's deepest value if it is deeper than i, else open a
		// fresh sublevel under l.
		if len(l.vals)-1 > i {
			last := l.vals[len(l.vals)-1]
			if last < a.max() {
				room := a.max() - last
				v := last + (room+1)>>1 // in (last, max]
				vals := append([]uint64{}, l.vals...)
				vals[len(vals)-1] = v
				return Code{vals: vals, width: a.width}, nil
			}
		}
		return a.extend(l)
	}
	if i == len(l.vals) {
		// l is a proper prefix of r (l < l/k...): go below r's next
		// value. Sublevel positions admit 0, so only a 0 next value is
		// a dead end.
		next := r.vals[i]
		if next >= 1 {
			return Code{vals: append(append([]uint64{}, r.vals[:i]...), next>>1), width: a.width}, nil
		}
		a.counters.RelabelErrors++
		return nil, fmt.Errorf("%w: no DLN sublevel between %s and %s", labels.ErrNeedRelabel, l, r)
	}
	// r is a proper prefix of l — impossible for l < r since extensions
	// order after their base.
	return nil, fmt.Errorf("%w: inconsistent DLN pair %s, %s", labels.ErrBadCode, l, r)
}

// extend appends a sublevel midway through the fresh value space.
func (a *Algebra) extend(l Code) (labels.Code, error) {
	if (len(l.vals)+1)*(a.width+1) > 255 {
		a.counters.OverflowHits++
		return nil, fmt.Errorf("%w: DLN sublevel chain for %s exceeds the label budget", labels.ErrOverflow, l)
	}
	mid := a.max() >> 1
	if mid == 0 {
		mid = 1
	}
	return Code{vals: append(append([]uint64{}, l.vals...), mid), width: a.width}, nil
}

// Compare implements labels.Algebra: value-wise, a base before its
// sublevels.
func (a *Algebra) Compare(p, q labels.Code) int {
	return compare(p.(Code), q.(Code))
}

func compare(x, y Code) int {
	n := len(x.vals)
	if len(y.vals) < n {
		n = len(y.vals)
	}
	for i := 0; i < n; i++ {
		switch {
		case x.vals[i] < y.vals[i]:
			return -1
		case x.vals[i] > y.vals[i]:
			return 1
		}
	}
	switch {
	case len(x.vals) < len(y.vals):
		return -1
	case len(x.vals) > len(y.vals):
		return 1
	default:
		return 0
	}
}

func toCode(c labels.Code, width int) (Code, error) {
	if c == nil {
		return Code{}, nil
	}
	dc, ok := c.(Code)
	if !ok {
		return Code{}, fmt.Errorf("%w: %T is not a DLN code", labels.ErrBadCode, c)
	}
	if dc.width != width {
		return Code{}, fmt.Errorf("%w: DLN width mismatch %d != %d", labels.ErrBadCode, dc.width, width)
	}
	return dc, nil
}

// New returns a DLN labeling at the default component width.
func New() labeling.Interface { return NewWithWidth(DefaultWidth) }

// NewWithWidth returns a DLN labeling with the given component width
// (small widths make the overflow experiments fast).
func NewWithWidth(width int) labeling.Interface {
	return prefix.New(prefix.Config{
		Name:    "dln",
		Algebra: MustAlgebra(width),
	})
}

// Factory returns fresh DLN instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
