package dln

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
)

// TestSublevelChainBudget: zigzag insertion drives DLN into ever deeper
// sublevel chains until the label budget refuses — the fixed-width
// scheme's §4 behaviour on the adversarial pattern.
func TestSublevelChainBudget(t *testing.T) {
	a := MustAlgebra(8)
	cs, err := a.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	l, r := cs[0], cs[1]
	sawStop := false
	for i := 0; i < 5000; i++ {
		m, err := a.Between(l, r)
		if err != nil {
			if errors.Is(err, labels.ErrOverflow) || errors.Is(err, labels.ErrNeedRelabel) {
				sawStop = true
				break
			}
			t.Fatal(err)
		}
		if i%2 == 0 {
			r = m
		} else {
			l = m
		}
	}
	if !sawStop {
		t.Fatal("DLN chain never hit its budget under zigzag")
	}
}

func TestDeepChainOrderStable(t *testing.T) {
	// Sublevel extensions keep strict order at every depth.
	a := MustAlgebra(8)
	cs, err := a.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	l, r := cs[0], cs[1]
	var chain []labels.Code
	for i := 0; i < 40; i++ {
		m, err := a.Between(l, r)
		if err != nil {
			break
		}
		chain = append(chain, m)
		l = m // one-sided: each new code sits between the last and r
	}
	for i := 1; i < len(chain); i++ {
		if a.Compare(chain[i-1], chain[i]) >= 0 {
			t.Fatalf("chain order broke at %d: %s !< %s", i, chain[i-1], chain[i])
		}
	}
	if a.Compare(chain[len(chain)-1], r) >= 0 {
		t.Fatal("chain escaped its right bound")
	}
}

func TestRenderChain(t *testing.T) {
	a := MustAlgebra(8)
	cs, _ := a.Assign(3)
	m, err := a.Between(cs[1], cs[2])
	if err != nil {
		t.Fatal(err)
	}
	if got := m.String(); got != "2/127" {
		t.Errorf("sublevel render: %s", got)
	}
	if m.Bits() != 2*(8+1) {
		t.Errorf("bits: %d", m.Bits())
	}
}
