package dln

import (
	"errors"
	"math/rand"
	"testing"

	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

func TestBulkAndRender(t *testing.T) {
	a := MustAlgebra(16)
	cs, err := a.Assign(3)
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].String() != "1" || cs[2].String() != "3" {
		t.Fatalf("bulk codes: %v %v", cs[0], cs[2])
	}
	m, err := a.Between(cs[1], cs[2]) // between 2 and 3: sublevel
	if err != nil {
		t.Fatal(err)
	}
	if m.(Code).String() != "2/32767" {
		t.Fatalf("sublevel code: %s", m)
	}
	if a.Compare(cs[1], m) >= 0 || a.Compare(m, cs[2]) >= 0 {
		t.Fatal("sublevel not strictly between")
	}
}

func TestSublevelChainsAndOrder(t *testing.T) {
	a := MustAlgebra(8)
	cs, err := a.Assign(4)
	if err != nil {
		t.Fatal(err)
	}
	codes := cs
	rng := rand.New(rand.NewSource(21))
	relabels := 0
	for i := 0; i < 1500; i++ {
		k := rng.Intn(len(codes) + 1)
		var l, r labels.Code
		if k > 0 {
			l = codes[k-1]
		}
		if k < len(codes) {
			r = codes[k]
		}
		m, err := a.Between(l, r)
		if err != nil {
			if errors.Is(err, labels.ErrNeedRelabel) || errors.Is(err, labels.ErrOverflow) {
				relabels++
				continue
			}
			t.Fatalf("step %d: %v", i, err)
		}
		if l != nil && a.Compare(l, m) >= 0 {
			t.Fatalf("step %d: %s !> %s", i, m, l)
		}
		if r != nil && a.Compare(m, r) >= 0 {
			t.Fatalf("step %d: %s !< %s", i, m, r)
		}
		codes = append(codes, nil)
		copy(codes[k+1:], codes[k:])
		codes[k] = m
	}
	if i := labels.CheckAscending(codes, a.Compare); i != -1 {
		t.Fatalf("sequence unsorted at %d", i)
	}
	t.Logf("8-bit DLN: %d of 1500 insertions required relabelling", relabels)
}

// TestFixedWidthOverflow: appending past the component maximum is the
// fixed-length overflow of §4.
func TestFixedWidthOverflow(t *testing.T) {
	a := MustAlgebra(4) // values 1..15
	if _, err := a.Assign(20); !errors.Is(err, labels.ErrOverflow) {
		t.Fatalf("bulk past width: %v", err)
	}
	cs, err := a.Assign(15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Between(cs[14], nil); !errors.Is(err, labels.ErrOverflow) {
		t.Fatalf("append past width: %v", err)
	}
	if a.Counters().OverflowHits == 0 {
		t.Error("overflow not counted")
	}
}

// TestBeforeFirstNeedsRelabel: DLN has no position before 1, so the
// scheme is not persistent.
func TestBeforeFirstNeedsRelabel(t *testing.T) {
	a := MustAlgebra(16)
	cs, err := a.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Between(nil, cs[0]); !errors.Is(err, labels.ErrNeedRelabel) {
		t.Fatalf("before-first of 1: %v", err)
	}
}

func TestDLNSession(t *testing.T) {
	doc := xmltree.Generate(xmltree.GenOptions{Seed: 4, MaxDepth: 4, MaxChildren: 4, AttrProb: 0.2})
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 600; i++ {
		nodes := doc.LabelledNodes()
		ref := nodes[rng.Intn(len(nodes))]
		if ref.Kind() != xmltree.KindElement {
			continue
		}
		switch {
		case ref != doc.Root() && rng.Intn(3) == 0:
			_, err = s.InsertBefore(ref, "d")
		case ref != doc.Root() && rng.Intn(3) == 1:
			_, err = s.InsertAfter(ref, "d")
		default:
			_, err = s.AppendChild(ref, "d")
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// DLN must have needed at least one relabel under before-first
	// pressure (it is graded N on persistence).
	if st := s.Labeling().Stats(); st.RelabelEvents == 0 {
		t.Log("note: no relabels in this storm; before-first pressure insufficient")
	}
}

func TestWidthValidation(t *testing.T) {
	if _, err := NewAlgebra(1); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := NewAlgebra(63); err == nil {
		t.Error("width 63 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAlgebra should panic on bad width")
		}
	}()
	MustAlgebra(0)
}
