package qed

import (
	"math/rand"
	"testing"

	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestQEDNeverRelabels is the scheme's headline property (§4): 2000
// mixed structural updates, zero relabels, order intact.
func TestQEDNeverRelabels(t *testing.T) {
	doc := xmltree.Generate(xmltree.GenOptions{Seed: 9, MaxDepth: 4, MaxChildren: 4, AttrProb: 0.2})
	s, err := update.NewSession(doc, NewPrefix())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		nodes := elementNodes(doc)
		ref := nodes[rng.Intn(len(nodes))]
		var opErr error
		switch rng.Intn(4) {
		case 0:
			if ref.Parent() != nil && ref != doc.Root() {
				_, opErr = s.InsertBefore(ref, "n")
			}
		case 1:
			if ref.Parent() != nil && ref != doc.Root() {
				_, opErr = s.InsertAfter(ref, "n")
			}
		case 2:
			_, opErr = s.InsertFirstChild(ref, "n")
		default:
			_, opErr = s.AppendChild(ref, "n")
		}
		if opErr != nil {
			t.Fatalf("op %d: %v", i, opErr)
		}
	}
	st := s.Labeling().Stats()
	if st.Relabeled != 0 || st.RelabelEvents != 0 || st.OverflowEvents != 0 {
		t.Fatalf("QED must never relabel: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestQEDBulkCodesEndInvariant(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(200)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		s := c.String()
		last := s[len(s)-1]
		if last != '2' && last != '3' {
			t.Fatalf("code %d (%s) breaks the terminal-digit invariant", i, s)
		}
	}
	if a.Counters().MaxRecursion == 0 {
		t.Error("QED bulk labelling should be recursive")
	}
	if a.Counters().Divisions == 0 {
		t.Error("QED third positions should count divisions")
	}
}

func TestQEDSkewedGrowthLinearBits(t *testing.T) {
	// Fixed-position insertion grows QED codes about one digit per one
	// to two insertions — the weakness the vector scheme targets.
	a := NewAlgebra()
	cs, err := a.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	l, r := cs[0], cs[1]
	for i := 0; i < 100; i++ {
		m, err := a.Between(l, r)
		if err != nil {
			t.Fatal(err)
		}
		r = m // always insert directly after l
	}
	gotBits := r.Bits()
	if gotBits < 80 {
		t.Errorf("after 100 skewed insertions code is %d bits; expected linear growth (>=80)", gotBits)
	}
}

func elementNodes(doc *xmltree.Document) []*xmltree.Node {
	var out []*xmltree.Node
	doc.WalkLabelled(func(n *xmltree.Node) bool {
		if n.Kind() == xmltree.KindElement {
			out = append(out, n)
		}
		return true
	})
	return out
}
