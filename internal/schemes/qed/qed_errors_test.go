package qed

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
)

func TestAlgebraMetadata(t *testing.T) {
	a := NewAlgebra()
	if a.Name() != "qed" {
		t.Errorf("name: %s", a.Name())
	}
	tr := a.Traits()
	if !tr.OverflowFree || !tr.Orthogonal || tr.DivisionFree || !tr.RecursiveInit {
		t.Errorf("traits: %+v", tr)
	}
	if tr.Encoding != labels.RepVariable {
		t.Errorf("encoding: %v", tr.Encoding)
	}
}

func TestForeignCodesRejected(t *testing.T) {
	a := NewAlgebra()
	if _, err := a.Between(labels.BitString("01"), nil); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign left: %v", err)
	}
	if _, err := a.Between(nil, labels.IntCode{V: 1, Width: 8}); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign right: %v", err)
	}
}

func TestAssignZeroAndCounters(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(0)
	if err != nil || len(cs) != 0 {
		t.Fatalf("Assign(0): %v %v", cs, err)
	}
	if _, err := a.Assign(50); err != nil {
		t.Fatal(err)
	}
	c := a.Counters()
	if c.Assigns != 2 || c.MaxRecursion == 0 || c.Divisions == 0 {
		t.Errorf("counters: %+v", *c)
	}
}

func TestRangeFactorySmoke(t *testing.T) {
	lab := NewRange()
	if lab.Name() != "qed-range" {
		t.Errorf("range name: %s", lab.Name())
	}
	if Factory()().Name() != "qed" {
		t.Error("factory name")
	}
}
