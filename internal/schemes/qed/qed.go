// Package qed implements the QED quaternary labelling scheme of Li &
// Ling [14] (paper §4): codes over the digits {1,2,3} (0 is reserved as
// the storage separator) whose lexicographic order is maintained under
// arbitrary insertions without ever relabelling existing nodes. QED is
// orthogonal: NewPrefix mounts it as a prefix scheme, NewRange as a
// containment scheme.
package qed

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/containment"
	"xmldyn/internal/schemes/prefix"
)

// Algebra is the QED code algebra. It implements labels.Algebra and
// labels.Instrumented.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh QED algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "qed" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra. QED's bulk labelling recurses on the
// 1/3 and 2/3 positions (computed with divisions), which is why the
// paper grades it non-compliant on the Division-Computation and
// Recursive-Algorithm properties while fully compliant on overflow.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepVariable,
		DivisionFree:  false,
		RecursiveInit: true,
		OverflowFree:  true,
		Orthogonal:    true,
	}
}

// Assign implements labels.Algebra via the recursive thirds algorithm.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	depth := 0
	qs, err := labels.AssignThirdsQStrings(n, &depth)
	if err != nil {
		return nil, err
	}
	if depth > a.counters.MaxRecursion {
		a.counters.MaxRecursion = depth
	}
	// Each recursion level computes two third positions by division.
	a.counters.Divisions += 2 * int64(depth)
	out := make([]labels.Code, n)
	for i, q := range qs {
		out[i] = q
	}
	return out, nil
}

// Between implements labels.Algebra. QED never fails: any neighbour pair
// admits a new code, so the scheme is overflow-free.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toQ(left)
	if err != nil {
		return nil, err
	}
	r, err := toQ(right)
	if err != nil {
		return nil, err
	}
	return labels.BetweenQStrings(l, r)
}

// Compare implements labels.Algebra.
func (a *Algebra) Compare(x, y labels.Code) int {
	return labels.CompareQStrings(x.(labels.QString), y.(labels.QString))
}

func toQ(c labels.Code) (labels.QString, error) {
	if c == nil {
		return "", nil
	}
	q, ok := c.(labels.QString)
	if !ok {
		return "", fmt.Errorf("%w: %T is not a QED code", labels.ErrBadCode, c)
	}
	return q, nil
}

// NewPrefix returns QED mounted as a prefix labeling (QED-Prefix).
func NewPrefix() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:    "qed",
		Algebra: NewAlgebra(),
	})
}

// NewRange returns QED mounted as a containment labeling (QED-Range),
// demonstrating the Orthogonal property of §5.1.
func NewRange() labeling.Interface {
	return containment.NewInterval(containment.IntervalConfig{
		Name:    "qed-range",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh QED-Prefix instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return NewPrefix() }
}
