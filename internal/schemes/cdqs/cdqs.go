// Package cdqs implements the Compact Dynamic Quaternary String scheme
// of Li, Ling & Hu [16] (paper §4): QED's separator-delimited quaternary
// codes with a compact bulk assignment. CDQS inherits QED's complete
// immunity to the overflow problem while shrinking initial labels — the
// paper's evaluation finds it "satisfies the greater number of
// properties" of any surveyed scheme (§5.2).
package cdqs

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/containment"
	"xmldyn/internal/schemes/prefix"
)

// Algebra is the CDQS code algebra.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "cdqs" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra.
//
// Note: the published matrix grades CDQS non-compliant on Division
// Computation and Recursive Algorithm because the original paper's bulk
// routine is recursive. Our implementation enumerates the n shortest
// codes in closed form — neither recursive nor dividing — so the
// measured matrix diverges on those two cells; EXPERIMENTS.md records
// the reason.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepVariable,
		DivisionFree:  true,
		RecursiveInit: false,
		OverflowFree:  true,
		Orthogonal:    true,
	}
}

// Assign implements labels.Algebra with the compact enumeration.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	qs := labels.AssignCompactQStrings(n)
	out := make([]labels.Code, n)
	for i, q := range qs {
		out[i] = q
	}
	return out, nil
}

// Between implements labels.Algebra (QED insertion; never fails).
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toQ(left)
	if err != nil {
		return nil, err
	}
	r, err := toQ(right)
	if err != nil {
		return nil, err
	}
	return labels.BetweenQStrings(l, r)
}

// Compare implements labels.Algebra.
func (a *Algebra) Compare(x, y labels.Code) int {
	return labels.CompareQStrings(x.(labels.QString), y.(labels.QString))
}

func toQ(c labels.Code) (labels.QString, error) {
	if c == nil {
		return "", nil
	}
	q, ok := c.(labels.QString)
	if !ok {
		return "", fmt.Errorf("%w: %T is not a quaternary code", labels.ErrBadCode, c)
	}
	return q, nil
}

// New returns a CDQS prefix labeling.
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:    "cdqs",
		Algebra: NewAlgebra(),
	})
}

// NewRange returns CDQS mounted as a containment labeling.
func NewRange() labeling.Interface {
	return containment.NewInterval(containment.IntervalConfig{
		Name:    "cdqs-range",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh CDQS instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
