package cdqs

import (
	"math/rand"
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/qed"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestCompactBeatsQEDOnBulk: CDQS's contribution over QED is initial
// label compactness at equal overflow-freedom.
func TestCompactBeatsQEDOnBulk(t *testing.T) {
	ca := NewAlgebra()
	qa := qed.NewAlgebra()
	for _, n := range []int{10, 100, 1000, 10000} {
		cc, err := ca.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		qc, err := qa.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		if c, q := labels.TotalBits(cc), labels.TotalBits(qc); c > q {
			t.Errorf("n=%d: CDQS %d bits > QED %d bits", n, c, q)
		}
	}
}

// TestNeverRelabels: CDQS inherits QED's overflow-freedom.
func TestNeverRelabels(t *testing.T) {
	doc := xmltree.Generate(xmltree.GenOptions{Seed: 31, MaxDepth: 3, MaxChildren: 4})
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1500; i++ {
		nodes := doc.LabelledNodes()
		ref := nodes[rng.Intn(len(nodes))]
		if ref.Kind() != xmltree.KindElement {
			continue
		}
		var err error
		if ref != doc.Root() && rng.Intn(2) == 0 {
			_, err = s.InsertBefore(ref, "q")
		} else {
			_, err = s.AppendChild(ref, "q")
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if st := s.Labeling().Stats(); st.Relabeled != 0 || st.OverflowEvents != 0 {
		t.Fatalf("CDQS relabelled: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTerminalDigitInvariant(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		q := c.(labels.QString)
		if !q.EndsInTwoOrThree() {
			t.Fatalf("bulk code %q breaks the invariant", q)
		}
	}
	if i := labels.CheckAscending(cs, a.Compare); i != -1 {
		t.Fatalf("bulk codes unsorted at %d", i)
	}
}

func TestRangeMount(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := NewRange()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	if err := labeling.VerifyOrder(lab, doc); err != nil {
		t.Fatal(err)
	}
}
