package cdqs

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
)

func TestAlgebraMetadata(t *testing.T) {
	a := NewAlgebra()
	if a.Name() != "cdqs" {
		t.Errorf("name: %s", a.Name())
	}
	tr := a.Traits()
	if !tr.OverflowFree || !tr.Orthogonal || !tr.DivisionFree || tr.RecursiveInit {
		t.Errorf("traits: %+v", tr)
	}
	if a.Counters() == nil {
		t.Error("counters nil")
	}
}

func TestForeignCodesRejected(t *testing.T) {
	a := NewAlgebra()
	if _, err := a.Between(labels.IntCode{V: 1, Width: 8}, nil); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign left: %v", err)
	}
	if _, err := a.Between(nil, labels.BitString("01")); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign right: %v", err)
	}
}

func TestAssignZero(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(0)
	if err != nil || len(cs) != 0 {
		t.Fatalf("Assign(0): %v %v", cs, err)
	}
}

func TestFactoriesSmoke(t *testing.T) {
	if New().Name() != "cdqs" || NewRange().Name() != "cdqs-range" {
		t.Error("factory names")
	}
}
