// Package dewey implements the DeweyID prefix labelling scheme of
// Tatarinov et al. [22] (paper §3.1.2, Figure 3): the positional
// identifier of the n-th child is the integer n, concatenated to the
// parent's label with a dot. Insertion requires relabelling following
// siblings and their descendants — the scheme's defining weakness.
package dewey

import (
	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/prefix"
)

// Width is the fixed storage width of one Dewey component.
const Width = 32

// NewAlgebra returns the DeweyID component algebra: dense integers from
// 1, no gaps. Interior and before-first insertions always require
// relabelling; append extends by one.
func NewAlgebra() *labels.IntAlgebra {
	return labels.MustIntAlgebra(labels.IntAlgebraConfig{
		Name:  "dewey-int",
		Start: 1,
		Gap:   1,
		Width: Width,
	})
}

// New returns a DeweyID labeling (labeling.Interface).
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:    "deweyid",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh DeweyID instances for the evaluation framework.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
