package improvedbinary

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestFigure6ImprovedBinary verifies the Figure 6 labelling of the
// example tree's top level and the three published insertion rules.
func TestFigure6ImprovedBinary(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	lab := s.Labeling()
	// Top-level codes for three children: 01, 0101, 011 (leftmost 01,
	// rightmost 011, middle from AssignMiddleSelfLabel).
	want := map[string]string{"a": "01", "b": "0101", "c": "011"}
	for name, w := range want {
		n := doc.FindElement(name)
		// The root path contributes its own component; strip it by
		// reading the rendered path's last dot component.
		got := lastComponent(lab.Label(n).String())
		if got != w {
			t.Errorf("%s: positional identifier %s, want %s", name, got, w)
		}
	}

	// Before-first: final 1 becomes 01 (e.g. 01 -> 001).
	g1, err := s.InsertFirstChild(doc.FindElement("a"), "g1")
	if err != nil {
		t.Fatal(err)
	}
	if got := lastComponent(lab.Label(g1).String()); got != "001" {
		t.Errorf("before-first: %s, want 001", got)
	}
	// After-last: extra 1 concatenated.
	cKids := xmltree.LabelledChildren(doc.FindElement("c"))
	lastCode := lastComponent(lab.Label(cKids[len(cKids)-1]).String())
	g2, err := s.AppendChild(doc.FindElement("c"), "g2")
	if err != nil {
		t.Fatal(err)
	}
	if got := lastComponent(lab.Label(g2).String()); got != lastCode+"1" {
		t.Errorf("after-last: %s, want %s1", got, lastCode)
	}
	if st := lab.Stats(); st.Relabeled != 0 {
		t.Errorf("ImprovedBinary relabelled %d nodes", st.Relabeled)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func lastComponent(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// TestLengthFieldOverflow: skewed before-first insertions grow the code
// one bit each until the 8-bit length field can no longer describe it —
// the §4 overflow problem for a variable-length scheme.
func TestLengthFieldOverflow(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	r := cs[0]
	overflowAt := 0
	for i := 1; i <= 400; i++ {
		m, err := a.Between(nil, r)
		if err != nil {
			if errors.Is(err, labels.ErrOverflow) {
				overflowAt = i
				break
			}
			t.Fatal(err)
		}
		r = m
	}
	if overflowAt == 0 {
		t.Fatal("no overflow within 400 skewed insertions")
	}
	// Code starts at 2 bits and grows ~1 bit per insertion: overflow
	// should arrive near MaxCodeBits.
	if overflowAt < MaxCodeBits-10 || overflowAt > MaxCodeBits+10 {
		t.Errorf("overflow at insertion %d, expected near %d", overflowAt, MaxCodeBits)
	}
	if a.Counters().OverflowHits == 0 {
		t.Error("overflow not counted")
	}
}

// TestOverflowTriggersRelabelInSession: when the algebra overflows, the
// prefix labeling falls back to a bulk relabel of the sibling list.
func TestOverflowTriggersRelabelInSession(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	a := doc.FindElement("a")
	for i := 0; i < MaxCodeBits+5; i++ {
		if _, err := s.InsertFirstChild(a, "w"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := s.Labeling().Stats()
	if st.OverflowEvents == 0 {
		t.Fatal("expected an overflow event in the session")
	}
	if st.RelabelEvents == 0 || st.Relabeled == 0 {
		t.Fatalf("overflow should force relabelling: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveInitCounted(t *testing.T) {
	a := NewAlgebra()
	if _, err := a.Assign(64); err != nil {
		t.Fatal(err)
	}
	if a.Counters().MaxRecursion < 3 {
		t.Errorf("recursion depth = %d, want >= 3 for 64 codes", a.Counters().MaxRecursion)
	}
	if a.Counters().Divisions == 0 {
		t.Error("middle-position divisions not counted")
	}
	if !a.Traits().RecursiveInit {
		t.Error("trait must declare recursive initial labelling")
	}
}
