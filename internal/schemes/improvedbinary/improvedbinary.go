// Package improvedbinary implements the ImprovedBinary prefix labelling
// scheme of Li & Ling [13] (paper §3.1.2, Figure 6): binary-string
// positional identifiers ending in 1, assigned by the recursive
// AssignMiddleSelfLabel algorithm and extended on insertion without
// renumbering — until the fixed-width length field that variable-length
// codes must carry overflows (paper §4).
package improvedbinary

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/prefix"
)

// MaxCodeBits is the longest representable code: variable-length binary
// codes are stored with an 8-bit length field, so a code past 255 bits
// cannot be stored — the overflow problem the paper names in §4.
const MaxCodeBits = 255

// LengthFieldBits is the per-code framing cost.
const LengthFieldBits = 8

// Algebra is the ImprovedBinary code algebra.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "improvedbinary" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra: the middle position (1+n)/2 is a
// division and the bulk labelling is recursive — the two N gradings the
// paper assigns ImprovedBinary beyond the overflow problem.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepVariable,
		DivisionFree:  false,
		RecursiveInit: true,
		OverflowFree:  false,
		Orthogonal:    false,
	}
}

// Assign implements labels.Algebra via the recursive middle algorithm.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	depth := 0
	bs, err := labels.AssignMiddleBitStrings(n, &depth)
	if err != nil {
		return nil, err
	}
	if depth > a.counters.MaxRecursion {
		a.counters.MaxRecursion = depth
	}
	a.counters.Divisions += int64(depth) // one midpoint division per level
	out := make([]labels.Code, n)
	for i, b := range bs {
		if len(b) > MaxCodeBits {
			a.counters.OverflowHits++
			return nil, fmt.Errorf("%w: bulk code of %d bits exceeds the %d-bit length field",
				labels.ErrOverflow, len(b), MaxCodeBits)
		}
		out[i] = b
	}
	return out, nil
}

// Between implements labels.Algebra, failing with ErrOverflow once the
// new code no longer fits the length field.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toBits(left)
	if err != nil {
		return nil, err
	}
	r, err := toBits(right)
	if err != nil {
		return nil, err
	}
	m, err := labels.BetweenBitStrings(l, r)
	if err != nil {
		return nil, err
	}
	if len(m) > MaxCodeBits {
		a.counters.OverflowHits++
		return nil, fmt.Errorf("%w: code of %d bits exceeds the %d-bit length field",
			labels.ErrOverflow, len(m), MaxCodeBits)
	}
	return m, nil
}

// Compare implements labels.Algebra.
func (a *Algebra) Compare(x, y labels.Code) int {
	return labels.CompareBitStrings(x.(labels.BitString), y.(labels.BitString))
}

func toBits(c labels.Code) (labels.BitString, error) {
	if c == nil {
		return "", nil
	}
	b, ok := c.(labels.BitString)
	if !ok {
		return "", fmt.Errorf("%w: %T is not a binary-string code", labels.ErrBadCode, c)
	}
	return b, nil
}

// New returns an ImprovedBinary labeling. Per the published scheme, the
// root element carries the empty string.
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:              "improvedbinary",
		Algebra:           NewAlgebra(),
		ExtraBitsPerLevel: LengthFieldBits,
		RootCode:          labels.BitString(""),
	})
}

// Factory returns fresh ImprovedBinary instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
