// Package lsdx implements the LSDX labelling scheme of Duong & Zhang [7]
// (paper §3.1.2, Figure 5). A label combines the node's level, the
// concatenated letters of its ancestors and its own letter string:
// the root is "0a", its children "1a.b", "1a.c", ..., a grandchild
// "2ab.b". Insertion rules are implemented exactly as published —
// including the corner cases in which they "do not always produce unique
// node labels" (the paper's §3.1.2 verdict, citing Sans & Laurent [19]);
// the collision experiment C4 reproduces a duplicate label with them.
package lsdx

import (
	"fmt"
	"strings"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/prefix"
)

// Code is an LSDX positional identifier: a non-empty lowercase letter
// string.
type Code string

// String implements labels.Code.
func (c Code) String() string { return string(c) }

// Bits implements labels.Code: letters are stored as bytes.
func (c Code) Bits() int { return 8 * len(c) }

// MaxCodeBytes is the default storage budget for one positional
// identifier: variable-length letter strings are stored with a one-byte
// length field (the §4 overflow argument applies to LSDX as to every
// variable-length scheme).
const MaxCodeBytes = 255

// Algebra is the LSDX letter algebra.
type Algebra struct {
	counters labels.Counters
	// maxBytes bounds code length; 0 disables the bound (Com-D wraps
	// this algebra and applies its own bound to the compressed form).
	maxBytes int
}

// NewAlgebra returns a fresh algebra with the default length budget.
func NewAlgebra() *Algebra { return &Algebra{maxBytes: MaxCodeBytes} }

// NewUnboundedAlgebra returns an algebra without a length budget.
func NewUnboundedAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "lsdx" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepVariable,
		DivisionFree:  true,
		RecursiveInit: false,
		OverflowFree:  false,
		Orthogonal:    false,
	}
}

// Assign implements labels.Algebra: "the first child of every node uses
// the letter b instead of a to permit future insertions before the first
// child. If the previously assigned positional identifier is z, then the
// next identifier will be zb."
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	if n <= 0 {
		return nil, nil
	}
	out := make([]labels.Code, n)
	cur := "b"
	for i := 0; i < n; i++ {
		out[i] = Code(cur)
		cur = successor(cur)
	}
	return out, nil
}

// successor produces the next bulk identifier after s.
func successor(s string) string {
	last := s[len(s)-1]
	if last < 'z' {
		return s[:len(s)-1] + string(last+1)
	}
	return s + "b"
}

// Between implements labels.Algebra with the three published insertion
// rules. It never requests a relabel — LSDX always produces *a* label;
// whether the label is unique is exactly the defect under study.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toCode(left)
	if err != nil {
		return nil, err
	}
	r, err := toCode(right)
	if err != nil {
		return nil, err
	}
	var out Code
	switch {
	case l == "" && r == "":
		out = Code("b")
	case l == "":
		// "A new node inserted to the left of all existing child nodes
		// is labelled by taking the existing leftmost child label and
		// prefixing an a to its positional identifier."
		out = Code("a" + r)
	case r == "":
		// "...taking the existing rightmost child label and
		// lexicographically incrementing the last letter."
		out = Code(successor(string(l)))
	default:
		// "...lexicographically incrementing the positional identifier
		// of the new node such that it is greater than its left
		// neighbour and less than its right neighbour" — realised, as
		// in the LSDX examples, by appending 'b' to the left neighbour
		// (Figure 5's 2ad.bb between 2ad.b and 2ad.c).
		out = Code(string(l) + "b")
	}
	if a.maxBytes > 0 && len(out) > a.maxBytes {
		a.counters.OverflowHits++
		return nil, fmt.Errorf("%w: LSDX code of %d letters exceeds the %d-byte length field",
			labels.ErrOverflow, len(out), a.maxBytes)
	}
	return out, nil
}

// Compare implements labels.Algebra: plain lexicographic letter order.
func (a *Algebra) Compare(x, y labels.Code) int {
	return strings.Compare(string(x.(Code)), string(y.(Code)))
}

func toCode(c labels.Code) (Code, error) {
	if c == nil {
		return "", nil
	}
	lc, ok := c.(Code)
	if !ok {
		return "", fmt.Errorf("%w: %T is not an LSDX code", labels.ErrBadCode, c)
	}
	return lc, nil
}

// RootCode is the root element's positional identifier: the root is
// labelled "0a".
const RootCode = Code("a")

// Render formats an LSDX label: level, ancestor letters, a dot, own
// letters — "2ad.bb"; the root renders "0a".
func Render(codes []labels.Code) string {
	level := len(codes) - 1
	if level == 0 {
		return fmt.Sprintf("%d%s", level, codes[0])
	}
	var anc strings.Builder
	for _, c := range codes[:len(codes)-1] {
		anc.WriteString(c.String())
	}
	return fmt.Sprintf("%d%s.%s", level, anc.String(), codes[len(codes)-1])
}

// New returns an LSDX labeling.
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:     "lsdx",
		Algebra:  NewAlgebra(),
		Render:   Render,
		RootCode: RootCode,
	})
}

// Factory returns fresh LSDX instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
