package lsdx

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
)

func TestAlgebraMetadata(t *testing.T) {
	a := NewAlgebra()
	if a.Name() != "lsdx" {
		t.Errorf("name: %s", a.Name())
	}
	if a.Traits().Encoding != labels.RepVariable {
		t.Error("encoding trait")
	}
	if a.Counters() == nil {
		t.Error("counters nil")
	}
}

func TestForeignCodesRejected(t *testing.T) {
	a := NewAlgebra()
	if _, err := a.Between(labels.QString("2"), nil); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign left: %v", err)
	}
	if _, err := a.Between(nil, labels.IntCode{V: 1, Width: 8}); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign right: %v", err)
	}
}

func TestLengthBudgetOverflow(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	r := cs[0]
	overflowed := false
	for i := 0; i < MaxCodeBytes+10; i++ {
		m, err := a.Between(nil, r)
		if err != nil {
			if errors.Is(err, labels.ErrOverflow) {
				overflowed = true
				break
			}
			t.Fatal(err)
		}
		r = m
	}
	if !overflowed {
		t.Fatal("LSDX length budget never overflowed")
	}
	if a.Counters().OverflowHits == 0 {
		t.Error("overflow not counted")
	}
	// The unbounded variant keeps going.
	u := NewUnboundedAlgebra()
	cs, err = u.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	r = cs[0]
	for i := 0; i < MaxCodeBytes+10; i++ {
		if r, err = u.Between(nil, r); err != nil {
			t.Fatalf("unbounded overflowed: %v", err)
		}
	}
}

func TestAssignZeroAndBits(t *testing.T) {
	a := NewAlgebra()
	if cs, err := a.Assign(0); err != nil || len(cs) != 0 {
		t.Errorf("Assign(0): %v %v", cs, err)
	}
	if Code("ab").Bits() != 16 {
		t.Error("bits per letter")
	}
}
