package lsdx

import (
	"testing"

	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestFigure5LSDX reproduces the paper's Figure 5: the example tree under
// LSDX plus the three grey insertions (2ab.ab, 2ac.c, 2ad.bb).
func TestFigure5LSDX(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	lab := s.Labeling()
	wantBase := map[string]string{
		"r": "0a",
		"a": "1a.b", "b": "1a.c", "c": "1a.d",
		"a1": "2ab.b", "a2": "2ab.c",
		"b1": "2ac.b",
		"c1": "2ad.b", "c2": "2ad.c", "c3": "2ad.d",
	}
	doc.WalkLabelled(func(n *xmltree.Node) bool {
		if got := lab.Label(n).String(); got != wantBase[n.Name()] {
			t.Errorf("base %s: got %s, want %s", n.Name(), got, wantBase[n.Name()])
		}
		return true
	})

	// Grey 1: before the first child of A -> prefix 'a' (2ab.ab).
	g1, err := s.InsertFirstChild(doc.FindElement("a"), "g1")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(g1).String(); got != "2ab.ab" {
		t.Errorf("before-first: got %s, want 2ab.ab", got)
	}
	// Grey 2: after the last child of B -> increment (2ac.c).
	g2, err := s.AppendChild(doc.FindElement("b"), "g2")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(g2).String(); got != "2ac.c" {
		t.Errorf("after-last: got %s, want 2ac.c", got)
	}
	// Grey 3: between c1 (2ad.b) and c2 (2ad.c) -> 2ad.bb.
	g3, err := s.InsertAfter(doc.FindElement("c1"), "g3")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(g3).String(); got != "2ad.bb" {
		t.Errorf("between: got %s, want 2ad.bb", got)
	}
	if st := lab.Stats(); st.Relabeled != 0 {
		t.Errorf("LSDX relabelled %d nodes on these insertions", st.Relabeled)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkSuccession(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(27)
	if err != nil {
		t.Fatal(err)
	}
	// b..z is 25 codes, then zb, zc.
	if cs[0].String() != "b" || cs[24].String() != "z" {
		t.Fatalf("bulk start/end: %s %s", cs[0], cs[24])
	}
	if cs[25].String() != "zb" || cs[26].String() != "zc" {
		t.Fatalf("post-z codes: %s %s", cs[25], cs[26])
	}
	if i := labels.CheckAscending(cs, a.Compare); i != -1 {
		t.Fatalf("bulk codes unsorted at %d", i)
	}
}

// TestCollisionDefect reproduces the paper's §3.1.2 finding (citing Sans
// & Laurent [19]) that "LSDX and the two labelling schemes derived from
// it do not always produce unique node labels": inserting between a node
// and a previously-inserted between-node yields a duplicate.
func TestCollisionDefect(t *testing.T) {
	a := NewAlgebra()
	left, right := Code("b"), Code("c")
	x, err := a.Between(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if x.String() != "bb" {
		t.Fatalf("first between: %s", x)
	}
	// Insert between "b" and the new "bb": the published rule appends
	// 'b' to the left neighbour again, colliding with the live "bb".
	y, err := a.Between(left, x)
	if err != nil {
		t.Fatal(err)
	}
	if a.Compare(x, y) != 0 {
		t.Fatalf("expected the documented collision, got distinct codes %s and %s", x, y)
	}
}

// TestCollisionSurfacesInSession shows the defect end-to-end: after the
// two-step insertion scenario the session's order verification fails.
func TestCollisionSurfacesInSession(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	x, err := s.InsertAfter(c1, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertAfter(c1, "y"); err != nil {
		t.Fatal(err)
	}
	_ = x
	if err := s.Verify(); err == nil {
		t.Fatal("expected an order violation from the duplicate label")
	}
}

func TestRender(t *testing.T) {
	root := []labels.Code{Code("a")}
	if got := Render(root); got != "0a" {
		t.Errorf("root render: %s", got)
	}
	deep := []labels.Code{Code("a"), Code("d"), Code("bb")}
	if got := Render(deep); got != "2ad.bb" {
		t.Errorf("deep render: %s", got)
	}
}

func TestDeletionAllowsReuse(t *testing.T) {
	// "labels are not persistent and may be reassigned upon deletion":
	// after deleting the last child, appending again reuses its code.
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	c3 := doc.FindElement("c3")
	old := s.Labeling().Label(c3).String()
	if err := s.Delete(c3); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.AppendChild(doc.FindElement("c"), "c3bis")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Labeling().Label(fresh).String(); got != old {
		t.Errorf("reused label = %s, want %s", got, old)
	}
}
