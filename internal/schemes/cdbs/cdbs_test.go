package cdbs

import (
	"errors"
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/qed"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestCompactBeatsQEDOnBulk quantifies the §4 contrast: CDBS initial
// labels are more compact than QED's for the same fan-out.
func TestCompactBeatsQEDOnBulk(t *testing.T) {
	ca := NewAlgebra()
	qa := qed.NewAlgebra()
	for _, n := range []int{10, 100, 1000} {
		cc, err := ca.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		qc, err := qa.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		// Payload comparison: binary codes against quaternary codes
		// (QED's Bits include its 2-bit separator — its actual storage
		// framing). CDBS pays its own framing in the fixed length
		// field, whose overflow liability TestFixedLengthFieldOverflow
		// measures; the paper's point is precisely this trade.
		cBits := labels.TotalBits(cc)
		qBits := labels.TotalBits(qc)
		if cBits >= qBits {
			t.Errorf("n=%d: CDBS %d payload bits !< QED %d bits", n, cBits, qBits)
		}
	}
}

func TestFixedLengthFieldOverflow(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	r := cs[0]
	var sawOverflow bool
	for i := 0; i < MaxCodeBits+20; i++ {
		m, err := a.Between(nil, r)
		if err != nil {
			if errors.Is(err, labels.ErrOverflow) {
				sawOverflow = true
				break
			}
			t.Fatal(err)
		}
		r = m
	}
	if !sawOverflow {
		t.Fatal("CDBS must hit its length-field overflow under skewed insertion")
	}
}

func TestSessionOrderAndPersistenceUntilOverflow(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	for i := 0; i < 60; i++ {
		if _, err := s.InsertAfter(c1, "n"); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Labeling().Stats(); st.Relabeled != 0 {
		t.Fatalf("CDBS relabelled before overflow: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMount(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := NewRange()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	if err := labeling.VerifyOrder(lab, doc); err != nil {
		t.Fatal(err)
	}
}
