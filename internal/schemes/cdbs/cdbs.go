// Package cdbs implements the Compact Dynamic Binary String scheme of
// Li, Ling & Hu [15] (paper §4): ImprovedBinary's insertion algorithm
// with a provably compact bulk assignment (the k-bit binary codes of
// 1..n with trailing zeros removed). The compactness is bought with
// fixed-length framing, so CDBS remains subject to the overflow problem
// — the paper's point in contrasting it with QED and CDQS.
package cdbs

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/containment"
	"xmldyn/internal/schemes/prefix"
)

// MaxCodeBits mirrors the 8-bit length field of the CDBS storage layout.
const MaxCodeBits = 255

// LengthFieldBits is the per-code framing cost.
const LengthFieldBits = 8

// Algebra is the CDBS code algebra.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "cdbs" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra: the closed-form bulk assignment is
// neither recursive nor divides, and CDBS codes mount on both prefix and
// range labelings; the fixed length field keeps it overflow-prone.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepFixed,
		DivisionFree:  true,
		RecursiveInit: false,
		OverflowFree:  false,
		Orthogonal:    true,
	}
}

// Assign implements labels.Algebra with the compact binary enumeration.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	bs := labels.AssignCompactBitStrings(n)
	out := make([]labels.Code, n)
	for i, b := range bs {
		if len(b) > MaxCodeBits {
			a.counters.OverflowHits++
			return nil, fmt.Errorf("%w: bulk code of %d bits exceeds the %d-bit length field",
				labels.ErrOverflow, len(b), MaxCodeBits)
		}
		out[i] = b
	}
	return out, nil
}

// Between implements labels.Algebra (the ImprovedBinary insertion rule).
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toBits(left)
	if err != nil {
		return nil, err
	}
	r, err := toBits(right)
	if err != nil {
		return nil, err
	}
	m, err := labels.BetweenBitStrings(l, r)
	if err != nil {
		return nil, err
	}
	if len(m) > MaxCodeBits {
		a.counters.OverflowHits++
		return nil, fmt.Errorf("%w: code of %d bits exceeds the %d-bit length field",
			labels.ErrOverflow, len(m), MaxCodeBits)
	}
	return m, nil
}

// Compare implements labels.Algebra.
func (a *Algebra) Compare(x, y labels.Code) int {
	return labels.CompareBitStrings(x.(labels.BitString), y.(labels.BitString))
}

func toBits(c labels.Code) (labels.BitString, error) {
	if c == nil {
		return "", nil
	}
	b, ok := c.(labels.BitString)
	if !ok {
		return "", fmt.Errorf("%w: %T is not a binary-string code", labels.ErrBadCode, c)
	}
	return b, nil
}

// New returns a CDBS prefix labeling. As in ImprovedBinary, the root
// element carries the empty string.
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:              "cdbs",
		Algebra:           NewAlgebra(),
		ExtraBitsPerLevel: LengthFieldBits,
		RootCode:          labels.BitString(""),
	})
}

// NewRange returns CDBS mounted as a containment labeling.
func NewRange() labeling.Interface {
	return containment.NewInterval(containment.IntervalConfig{
		Name:    "cdbs-range",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh CDBS instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
