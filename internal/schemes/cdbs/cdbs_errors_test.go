package cdbs

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
)

func TestAlgebraMetadata(t *testing.T) {
	a := NewAlgebra()
	if a.Name() != "cdbs" {
		t.Errorf("name: %s", a.Name())
	}
	tr := a.Traits()
	if tr.OverflowFree || !tr.Orthogonal || !tr.DivisionFree || tr.RecursiveInit {
		t.Errorf("traits: %+v", tr)
	}
	if tr.Encoding != labels.RepFixed {
		t.Errorf("encoding: %v", tr.Encoding)
	}
	if a.Counters() == nil {
		t.Error("counters nil")
	}
}

func TestForeignCodesRejected(t *testing.T) {
	a := NewAlgebra()
	if _, err := a.Between(labels.QString("2"), nil); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign left: %v", err)
	}
	if _, err := a.Between(nil, labels.IntCode{V: 3, Width: 8}); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign right: %v", err)
	}
}

func TestCompareAndAssignEdge(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Compare(cs[0], cs[1]) >= 0 || a.Compare(cs[2], cs[0]) <= 0 {
		t.Error("compare ordering")
	}
	if zero, err := a.Assign(0); err != nil || len(zero) != 0 {
		t.Errorf("Assign(0): %v %v", zero, err)
	}
}
