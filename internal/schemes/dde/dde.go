// Package dde implements the DDE labelling scheme of Xu, Ling, Wu & Bao
// [28] ("DDE: From Dewey to a Fully Dynamic XML Labeling Scheme"), the
// second scheme the paper's conclusion queues up for evaluation. DDE
// starts from Dewey labels and makes them fully dynamic: a node inserted
// between siblings u and v takes the component-wise sum u+v (a
// generalised mediant), before-first/after-last adjust only the final
// component, and order is decided by comparing component ratios via
// cross multiplication — no division, no relabelling, compact growth.
package dde

import (
	"fmt"
	"strconv"
	"strings"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/xmltree"
)

// Label is a DDE label: a component sequence whose first component is
// always positive. Children extend their parent's label by one
// component; sibling insertions keep the length fixed.
type Label []int64

// String joins components with dots, Dewey-style.
func (l Label) String() string {
	parts := make([]string, len(l))
	for i, v := range l {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ".")
}

// Bits implements labeling.Label: zigzagged LEB128 per component.
func (l Label) Bits() int {
	total := 0
	for _, v := range l {
		z := uint64(v<<1) ^ uint64(v>>63)
		total += 8 * len(labels.EncodeLEB128(z))
	}
	return total
}

// compareLabels orders two DDE labels: the first index at which the
// component ratios (relative to the first component) differ decides; a
// proper ratio-prefix (ancestor) orders first. Raw comparison breaks the
// theoretical tie of proportional-but-distinct labels, which cannot
// coexist among live siblings but keeps the order total.
func compareLabels(a, b Label) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		lhs := a[i] * b[0]
		rhs := b[i] * a[0]
		switch {
		case lhs < rhs:
			return -1
		case lhs > rhs:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	// Proportional and equal length: tie-break on raw components.
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// proportionalPrefix reports whether the first k components of d are
// proportional to a's first k components (d_i * a_0 == a_i * d_0).
func proportionalPrefix(a, d Label, k int) bool {
	for i := 0; i < k; i++ {
		if d[i]*a[0] != a[i]*d[0] {
			return false
		}
	}
	return true
}

// Labeling is the DDE labeling bound to one document.
type Labeling struct {
	doc   *xmltree.Document
	lab   map[*xmltree.Node]Label
	stats labeling.Stats
}

// New returns an unbound DDE labeling.
func New() *Labeling {
	return &Labeling{lab: make(map[*xmltree.Node]Label)}
}

// Name implements labeling.Interface.
func (dl *Labeling) Name() string { return "dde" }

// Stats implements labeling.Interface.
func (dl *Labeling) Stats() *labeling.Stats { return &dl.stats }

// Build implements labeling.Interface: the root is 1; the i-th
// labellable child of a node extends the parent's label with i.
func (dl *Labeling) Build(doc *xmltree.Document) error {
	dl.doc = doc
	dl.lab = make(map[*xmltree.Node]Label, doc.LabelledCount())
	dl.stats.Reset()
	var assign func(parent *xmltree.Node, parentLabel Label)
	assign = func(parent *xmltree.Node, parentLabel Label) {
		for i, k := range xmltree.LabelledChildren(parent) {
			l := make(Label, len(parentLabel)+1)
			copy(l, parentLabel)
			l[len(parentLabel)] = int64(i + 1)
			dl.lab[k] = l
			dl.stats.Assigned++
			assign(k, l)
		}
	}
	root := doc.Root()
	if root == nil {
		return fmt.Errorf("dde: empty document")
	}
	dl.lab[root] = Label{1}
	dl.stats.Assigned++
	assign(root, Label{1})
	return nil
}

// Label implements labeling.Interface.
func (dl *Labeling) Label(n *xmltree.Node) labeling.Label {
	l, ok := dl.lab[n]
	if !ok {
		return nil
	}
	return l
}

// Compare implements labeling.Interface.
func (dl *Labeling) Compare(a, b labeling.Label) int {
	return compareLabels(a.(Label), b.(Label))
}

// IsAncestor implements labeling.AncestorByLabel: d descends from a iff
// d is longer and its prefix is proportional to a.
func (dl *Labeling) IsAncestor(a, d labeling.Label) bool {
	la, ld := a.(Label), d.(Label)
	return len(ld) > len(la) && proportionalPrefix(la, ld, len(la))
}

// IsParent implements labeling.ParentByLabel.
func (dl *Labeling) IsParent(p, c labeling.Label) bool {
	lp, lc := p.(Label), c.(Label)
	return len(lc) == len(lp)+1 && proportionalPrefix(lp, lc, len(lp))
}

// IsSibling implements labeling.SiblingByLabel: equal length, first
// len-1 components proportional, not the same label.
func (dl *Labeling) IsSibling(a, b labeling.Label) bool {
	la, lb := a.(Label), b.(Label)
	if len(la) != len(lb) || len(la) < 2 {
		return false
	}
	return proportionalPrefix(la, lb, len(la)-1) && compareLabels(la, lb) != 0
}

// Level implements labeling.LevelByLabel.
func (dl *Labeling) Level(l labeling.Label) (int, bool) {
	return len(l.(Label)) - 1, true
}

// maxComponent guards against int64 overflow in the additive growth.
const maxComponent = int64(1) << 60

// NodeInserted implements labeling.Interface.
func (dl *Labeling) NodeInserted(n *xmltree.Node) error {
	parent := xmltree.LabelledParent(n)
	var parentNode *xmltree.Node
	if parent != nil {
		parentNode = parent
	} else {
		parentNode = dl.doc.Node()
	}
	siblings := xmltree.LabelledChildren(parentNode)
	idx := -1
	for i, s := range siblings {
		if s == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("dde: inserted node %q not among siblings", n.Name())
	}
	var left, right Label
	if idx > 0 {
		left = dl.lab[siblings[idx-1]]
	}
	if idx+1 < len(siblings) {
		right = dl.lab[siblings[idx+1]]
	}
	var l Label
	switch {
	case left == nil && right == nil:
		// Only labellable child: first child of its parent.
		var parentLabel Label
		if parent != nil {
			parentLabel = dl.lab[parent]
		}
		l = append(append(Label{}, parentLabel...), 1)
	case left == nil:
		// Before first: decrement the final component.
		l = append(Label{}, right...)
		l[len(l)-1]--
	case right == nil:
		// After last: increment the final component.
		l = append(Label{}, left...)
		l[len(l)-1]++
	default:
		// Between: component-wise sum (generalised mediant).
		if len(left) != len(right) {
			return fmt.Errorf("dde: sibling labels %s and %s have different lengths", left, right)
		}
		l = make(Label, len(left))
		for i := range left {
			l[i] = left[i] + right[i]
		}
	}
	for _, v := range l {
		if v > maxComponent || v < -maxComponent {
			dl.stats.OverflowEvents++
			return fmt.Errorf("%w: DDE component %d beyond the additive budget", labels.ErrOverflow, v)
		}
	}
	dl.lab[n] = l
	dl.stats.Assigned++
	return nil
}

// NodeDeleting implements labeling.Interface.
func (dl *Labeling) NodeDeleting(n *xmltree.Node) {
	delete(dl.lab, n)
	for _, a := range n.Attributes() {
		delete(dl.lab, a)
	}
	for _, c := range n.Children() {
		if c.Kind() == xmltree.KindElement {
			dl.NodeDeleting(c)
		}
	}
}

// Factory returns fresh DDE labelings.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
