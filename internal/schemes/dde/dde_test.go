package dde

import (
	"math/rand"
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

func TestBuildMatchesDewey(t *testing.T) {
	// Before any update, DDE labels read exactly like Dewey labels.
	doc := xmltree.ExampleTree()
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"r": "1", "a": "1.1", "b": "1.2", "c": "1.3",
		"a1": "1.1.1", "a2": "1.1.2", "b1": "1.2.1",
		"c1": "1.3.1", "c2": "1.3.2", "c3": "1.3.3",
	}
	doc.WalkLabelled(func(n *xmltree.Node) bool {
		if got := lab.Label(n).String(); got != want[n.Name()] {
			t.Errorf("%s: got %s, want %s", n.Name(), got, want[n.Name()])
		}
		return true
	})
}

func TestMediantInsertBetweenSiblings(t *testing.T) {
	doc := xmltree.ExampleTree()
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	// Between 1.3.1 and 1.3.2: component-wise sum 2.6.3.
	n, err := s.InsertAfter(doc.FindElement("c1"), "m")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(n).String(); got != "2.6.3" {
		t.Errorf("mediant label = %s, want 2.6.3", got)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// The inserted node is still a child of c and a descendant of r.
	c := lab.Label(doc.FindElement("c"))
	r := lab.Label(doc.Root())
	if !lab.IsParent(c, lab.Label(n)) {
		t.Error("mediant node should remain a child of c by proportionality")
	}
	if !lab.IsAncestor(r, lab.Label(n)) {
		t.Error("mediant node should remain a descendant of the root")
	}
}

func TestEndInsertions(t *testing.T) {
	doc := xmltree.ExampleTree()
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	front, err := s.InsertFirstChild(doc.FindElement("c"), "front")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(front).String(); got != "1.3.0" {
		t.Errorf("before-first = %s, want 1.3.0", got)
	}
	back, err := s.AppendChild(doc.FindElement("c"), "back")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(back).String(); got != "1.3.4" {
		t.Errorf("after-last = %s, want 1.3.4", got)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFullyDynamicNoRelabels: DDE's titular property under a mixed storm.
func TestFullyDynamicNoRelabels(t *testing.T) {
	doc := xmltree.Generate(xmltree.GenOptions{Seed: 13, MaxDepth: 4, MaxChildren: 4, AttrProb: 0.2})
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	before := labeling.Snapshot(lab, doc)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1200; i++ {
		nodes := doc.LabelledNodes()
		ref := nodes[rng.Intn(len(nodes))]
		if ref.Kind() != xmltree.KindElement {
			continue
		}
		switch {
		case ref != doc.Root() && rng.Intn(3) == 0:
			_, err = s.InsertBefore(ref, "d")
		case ref != doc.Root() && rng.Intn(3) == 1:
			_, err = s.InsertAfter(ref, "d")
		default:
			_, err = s.AppendChild(ref, "d")
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	after := labeling.Snapshot(lab, doc)
	for n, old := range before {
		if after[n] != old {
			t.Fatalf("label of %s changed: %s -> %s", n.Name(), old, after[n])
		}
	}
	if st := lab.Stats(); st.Relabeled != 0 {
		t.Fatalf("DDE relabelled %d nodes", st.Relabeled)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRelationshipsAgainstGroundTruth exercises the proportionality
// tests on a document after updates, where scaled prefixes appear.
func TestRelationshipsAgainstGroundTruth(t *testing.T) {
	doc := xmltree.ExampleTree()
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	for i := 0; i < 8; i++ {
		if _, err := s.InsertAfter(c1, "w"); err != nil {
			t.Fatal(err)
		}
	}
	// Grow a subtree under an inserted (mediant-labelled) node.
	var inserted *xmltree.Node
	for _, k := range doc.FindElement("c").Children() {
		if k.Name() == "w" {
			inserted = k
			break
		}
	}
	if inserted == nil {
		t.Fatal("inserted node not found")
	}
	if _, err := s.AppendChild(inserted, "wk"); err != nil {
		t.Fatal(err)
	}
	nodes := doc.LabelledNodes()
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			if got := lab.IsAncestor(lab.Label(u), lab.Label(v)); got != u.IsAncestorOf(v) {
				t.Fatalf("IsAncestor(%s=%s, %s=%s)=%v, truth %v",
					u.Name(), lab.Label(u), v.Name(), lab.Label(v), got, u.IsAncestorOf(v))
			}
			uParent := xmltree.LabelledParent(v) == u
			if got := lab.IsParent(lab.Label(u), lab.Label(v)); got != uParent {
				t.Fatalf("IsParent(%s,%s)=%v, truth %v", u.Name(), v.Name(), got, uParent)
			}
		}
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Antisymmetry and transitivity spot-check over a stormed document.
	doc := xmltree.ExampleTree()
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		nodes := doc.LabelledNodes()
		ref := nodes[rng.Intn(len(nodes))]
		if ref == doc.Root() {
			continue
		}
		if _, err := s.InsertAfter(ref, "t"); err != nil {
			t.Fatal(err)
		}
	}
	nodes := doc.LabelledNodes()
	pre := doc.PreRank()
	for i := 0; i < len(nodes); i += 7 {
		for j := 0; j < len(nodes); j += 11 {
			got := lab.Compare(lab.Label(nodes[i]), lab.Label(nodes[j]))
			want := sign(pre[nodes[i]] - pre[nodes[j]])
			if got != want {
				t.Fatalf("Compare(%s,%s)=%d, want %d", lab.Label(nodes[i]), lab.Label(nodes[j]), got, want)
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
