// Package prefix implements the generic prefix labelling mechanism of the
// paper's §3.1.2: a node's label is its parent's label extended with a
// positional identifier drawn from a pluggable code algebra. DeweyID,
// ORDPATH, DLN, LSDX, ImprovedBinary, QED, CDBS, CDQS and the vector
// scheme are all prefix labelings over different algebras; this package
// provides the shared path bookkeeping, relabelling policy and the
// ancestor/parent/sibling/level evaluations that prefix labels support
// from the label value alone.
package prefix

import (
	"errors"
	"fmt"
	"strings"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/xmltree"
)

// Config parameterises a prefix labeling.
type Config struct {
	// Name is the scheme name shown in figures and stats.
	Name string
	// Algebra supplies positional identifiers for each sibling list.
	Algebra labels.Algebra
	// Render formats a full path; nil joins code strings with ".".
	Render func(codes []labels.Code) string
	// ExtraBitsPerLevel accounts for per-component framing (separators
	// or length fields) not already included in Code.Bits.
	ExtraBitsPerLevel int
	// RootCode, when set, is the root element's positional identifier,
	// overriding the algebra's bulk assignment for the document's
	// single root (LSDX labels the root "a" but first children "b").
	RootCode labels.Code
}

// Labeling is a prefix labeling bound to a document.
type Labeling struct {
	cfg   Config
	doc   *xmltree.Document
	codes map[*xmltree.Node]labels.Code // own positional identifier
	stats labeling.Stats
}

// New returns an unbound prefix labeling.
func New(cfg Config) *Labeling {
	return &Labeling{cfg: cfg, codes: make(map[*xmltree.Node]labels.Code)}
}

// Name implements labeling.Interface.
func (pl *Labeling) Name() string { return pl.cfg.Name }

// Stats implements labeling.Interface.
func (pl *Labeling) Stats() *labeling.Stats { return &pl.stats }

// Algebra exposes the underlying code algebra (used by the framework's
// orthogonality probe).
func (pl *Labeling) Algebra() labels.Algebra { return pl.cfg.Algebra }

// Build implements labeling.Interface: every sibling list receives a bulk
// code assignment from the algebra, top-down.
func (pl *Labeling) Build(doc *xmltree.Document) error {
	pl.doc = doc
	pl.codes = make(map[*xmltree.Node]labels.Code, doc.LabelledCount())
	pl.stats.Reset()
	return pl.assignChildren(doc.Node())
}

func (pl *Labeling) assignChildren(parent *xmltree.Node) error {
	kids := xmltree.LabelledChildren(parent)
	if len(kids) == 0 {
		return nil
	}
	var cs []labels.Code
	var err error
	if parent.Kind() == xmltree.KindDocument && pl.cfg.RootCode != nil && len(kids) == 1 {
		cs = []labels.Code{pl.cfg.RootCode}
	} else {
		cs, err = pl.cfg.Algebra.Assign(len(kids))
	}
	if err != nil {
		return fmt.Errorf("prefix %s: bulk assign %d: %w", pl.cfg.Name, len(kids), err)
	}
	for i, k := range kids {
		pl.codes[k] = cs[i]
		pl.stats.Assigned++
		if err := pl.assignChildren(k); err != nil {
			return err
		}
	}
	return nil
}

// Path is the label of a node under a prefix labeling: the sequence of
// positional identifiers from the root element down to the node.
type Path struct {
	codes []labels.Code
	cfg   *Config
}

// String renders the path using the scheme's renderer. The default
// renderer joins component strings with dots, skipping empty components
// (ImprovedBinary assigns the root the empty string).
func (p Path) String() string {
	if p.cfg.Render != nil {
		return p.cfg.Render(p.codes)
	}
	parts := make([]string, 0, len(p.codes))
	for _, c := range p.codes {
		if s := c.String(); s != "" {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, ".")
}

// Bits implements labeling.Label.
func (p Path) Bits() int {
	total := 0
	for _, c := range p.codes {
		total += c.Bits()
	}
	return total + p.cfg.ExtraBitsPerLevel*len(p.codes)
}

// Len returns the number of path components (level + 1).
func (p Path) Len() int { return len(p.codes) }

// Code returns the i-th positional identifier.
func (p Path) Code(i int) labels.Code { return p.codes[i] }

// Label implements labeling.Interface.
func (pl *Labeling) Label(n *xmltree.Node) labeling.Label {
	if _, ok := pl.codes[n]; !ok {
		return nil
	}
	var rev []labels.Code
	for x := n; x != nil; x = xmltree.LabelledParent(x) {
		c, ok := pl.codes[x]
		if !ok {
			return nil
		}
		rev = append(rev, c)
		if xmltree.LabelledParent(x) == nil {
			break
		}
	}
	codes := make([]labels.Code, len(rev))
	for i := range rev {
		codes[i] = rev[len(rev)-1-i]
	}
	return Path{codes: codes, cfg: &pl.cfg}
}

// Compare implements labeling.Interface: component-wise algebra order
// with an ancestor (proper path prefix) ordered before its descendants.
func (pl *Labeling) Compare(a, b labeling.Label) int {
	pa, pb := a.(Path), b.(Path)
	n := len(pa.codes)
	if len(pb.codes) < n {
		n = len(pb.codes)
	}
	for i := 0; i < n; i++ {
		if c := pl.cfg.Algebra.Compare(pa.codes[i], pb.codes[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(pa.codes) < len(pb.codes):
		return -1
	case len(pa.codes) > len(pb.codes):
		return 1
	default:
		return 0
	}
}

// IsAncestor implements labeling.AncestorByLabel: label(a) is a proper
// prefix of label(d) (paper §3.1.2).
func (pl *Labeling) IsAncestor(a, d labeling.Label) bool {
	pa, pd := a.(Path), d.(Path)
	if len(pa.codes) >= len(pd.codes) {
		return false
	}
	for i := range pa.codes {
		if pl.cfg.Algebra.Compare(pa.codes[i], pd.codes[i]) != 0 {
			return false
		}
	}
	return true
}

// IsParent implements labeling.ParentByLabel.
func (pl *Labeling) IsParent(p, c labeling.Label) bool {
	pp, pc := p.(Path), c.(Path)
	return len(pp.codes)+1 == len(pc.codes) && pl.IsAncestor(p, c)
}

// IsSibling implements labeling.SiblingByLabel: equal-length paths that
// agree on every component except the last.
func (pl *Labeling) IsSibling(a, b labeling.Label) bool {
	pa, pb := a.(Path), b.(Path)
	if len(pa.codes) != len(pb.codes) || len(pa.codes) == 0 {
		return false
	}
	for i := 0; i < len(pa.codes)-1; i++ {
		if pl.cfg.Algebra.Compare(pa.codes[i], pb.codes[i]) != 0 {
			return false
		}
	}
	return pl.cfg.Algebra.Compare(pa.codes[len(pa.codes)-1], pb.codes[len(pb.codes)-1]) != 0
}

// Level implements labeling.LevelByLabel: the component count determines
// depth (root element is level 0).
func (pl *Labeling) Level(l labeling.Label) (int, bool) {
	return len(l.(Path).codes) - 1, true
}

// NodeInserted implements labeling.Interface. The new node is already
// attached; its position among the labellable siblings determines the
// left/right bounds passed to the algebra. If the algebra cannot insert
// without disturbing neighbours (ErrNeedRelabel or ErrOverflow), the
// whole sibling list is reassigned and every node whose label changes —
// including descendants, whose paths embed the changed component — is
// counted as relabelled.
func (pl *Labeling) NodeInserted(n *xmltree.Node) error {
	parent := xmltree.LabelledParent(n)
	var parentNode *xmltree.Node
	if parent != nil {
		parentNode = parent
	} else {
		parentNode = pl.doc.Node()
	}
	siblings := xmltree.LabelledChildren(parentNode)
	idx := -1
	for i, s := range siblings {
		if s == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("prefix %s: inserted node %q not found among siblings", pl.cfg.Name, n.Name())
	}
	var left, right labels.Code
	if idx > 0 {
		left = pl.codes[siblings[idx-1]]
	}
	if idx+1 < len(siblings) {
		right = pl.codes[siblings[idx+1]]
	}
	code, err := pl.cfg.Algebra.Between(left, right)
	switch {
	case err == nil:
		pl.codes[n] = code
		pl.stats.Assigned++
		return nil
	case isRelabelErr(err):
		return pl.relabelSiblings(parentNode, siblings, n, err)
	default:
		return fmt.Errorf("prefix %s: insert: %w", pl.cfg.Name, err)
	}
}

func isRelabelErr(err error) bool {
	return errors.Is(err, labels.ErrNeedRelabel) || errors.Is(err, labels.ErrOverflow)
}

// relabelSiblings reassigns the whole sibling list after an insertion the
// algebra could not absorb.
func (pl *Labeling) relabelSiblings(parent *xmltree.Node, siblings []*xmltree.Node, inserted *xmltree.Node, cause error) error {
	pl.stats.RelabelEvents++
	if errors.Is(cause, labels.ErrOverflow) {
		pl.stats.OverflowEvents++
	}
	cs, err := pl.cfg.Algebra.Assign(len(siblings))
	if err != nil {
		pl.stats.OverflowEvents++
		return fmt.Errorf("prefix %s: relabel of %d siblings failed: %w", pl.cfg.Name, len(siblings), err)
	}
	for i, s := range siblings {
		old, had := pl.codes[s]
		pl.codes[s] = cs[i]
		switch {
		case s == inserted || !had:
			pl.stats.Assigned++
		case pl.cfg.Algebra.Compare(old, cs[i]) != 0:
			// The sibling's own component changed: the sibling and every
			// labelled descendant carry a new label.
			pl.stats.Relabeled += 1 + int64(countLabelled(s)-1)
		}
	}
	return nil
}

func countLabelled(n *xmltree.Node) int {
	count := 1 + len(n.Attributes())
	for _, c := range n.Children() {
		if c.Kind() == xmltree.KindElement {
			count += countLabelled(c)
		}
	}
	return count
}

// NodeDeleting implements labeling.Interface: forget the subtree's codes.
func (pl *Labeling) NodeDeleting(n *xmltree.Node) {
	delete(pl.codes, n)
	for _, a := range n.Attributes() {
		delete(pl.codes, a)
	}
	for _, c := range n.Children() {
		if c.Kind() == xmltree.KindElement {
			pl.NodeDeleting(c)
		}
	}
}
