package prefix_test

import (
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/dewey"
	"xmldyn/internal/schemes/prefix"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestFigure3DeweyID verifies the DeweyID labels of the paper's Figure 3
// on the example tree.
func TestFigure3DeweyID(t *testing.T) {
	doc := xmltree.ExampleTree()
	lab := dewey.New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"r": "1",
		"a": "1.1", "b": "1.2", "c": "1.3",
		"a1": "1.1.1", "a2": "1.1.2",
		"b1": "1.2.1",
		"c1": "1.3.1", "c2": "1.3.2", "c3": "1.3.3",
	}
	doc.WalkLabelled(func(n *xmltree.Node) bool {
		if got := lab.Label(n).String(); got != want[n.Name()] {
			t.Errorf("%s: got %s, want %s", n.Name(), got, want[n.Name()])
		}
		return true
	})
}

// TestDeweyRelabelOnFrontInsert verifies the §3.1.2 claim: "the insertion
// of new nodes requires the relabelling of any following-sibling nodes
// (and their descendants)".
func TestDeweyRelabelOnFrontInsert(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, dewey.New())
	if err != nil {
		t.Fatal(err)
	}
	r := doc.Root()
	// Insert before the first child of the root: all 3 children plus
	// their 6 descendants must be relabelled.
	if _, err := s.InsertFirstChild(r, "new"); err != nil {
		t.Fatal(err)
	}
	st := s.Labeling().Stats()
	if st.Relabeled != 9 {
		t.Errorf("relabelled = %d, want 9 (3 children + 6 descendants)", st.Relabeled)
	}
	if st.RelabelEvents != 1 {
		t.Errorf("relabel events = %d, want 1", st.RelabelEvents)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := s.Labeling().Label(doc.FindElement("new")).String(); got != "1.1" {
		t.Errorf("new node label = %s, want 1.1", got)
	}
	if got := s.Labeling().Label(doc.FindElement("a")).String(); got != "1.2" {
		t.Errorf("shifted sibling label = %s, want 1.2", got)
	}
}

// TestDeweyAppendDoesNotRelabel: appending after the last sibling is the
// one cheap DeweyID insertion.
func TestDeweyAppendDoesNotRelabel(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, dewey.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendChild(doc.Root(), "tail"); err != nil {
		t.Fatal(err)
	}
	if st := s.Labeling().Stats(); st.Relabeled != 0 {
		t.Errorf("append relabelled %d nodes", st.Relabeled)
	}
	if got := s.Labeling().Label(doc.FindElement("tail")).String(); got != "1.4" {
		t.Errorf("appended label = %s, want 1.4", got)
	}
}

// TestDeweyMidInsertRelabelsFollowersOnly: inserting between c1 and c2
// relabels only the following siblings of the insertion point.
func TestDeweyMidInsertRelabelsFollowersOnly(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, dewey.New())
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	if _, err := s.InsertAfter(c1, "mid"); err != nil {
		t.Fatal(err)
	}
	st := s.Labeling().Stats()
	// c2 and c3 shift; c1 keeps 1.3.1.
	if st.Relabeled != 2 {
		t.Errorf("relabelled = %d, want 2", st.Relabeled)
	}
	if got := s.Labeling().Label(doc.FindElement("c1")).String(); got != "1.3.1" {
		t.Errorf("c1 = %s, want unchanged 1.3.1", got)
	}
	if got := s.Labeling().Label(doc.FindElement("mid")).String(); got != "1.3.2" {
		t.Errorf("mid = %s, want 1.3.2", got)
	}
	if got := s.Labeling().Label(doc.FindElement("c3")).String(); got != "1.3.4" {
		t.Errorf("c3 = %s, want 1.3.4", got)
	}
}

func TestPrefixRelationships(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := dewey.New().(interface {
		labeling.Interface
		labeling.AncestorByLabel
		labeling.ParentByLabel
		labeling.SiblingByLabel
		labeling.LevelByLabel
	})
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	book := lab.Label(doc.FindElement("book"))
	publisher := lab.Label(doc.FindElement("publisher"))
	editor := lab.Label(doc.FindElement("editor"))
	name := lab.Label(doc.FindElement("name"))
	address := lab.Label(doc.FindElement("address"))
	title := lab.Label(doc.FindElement("title"))

	if !lab.IsAncestor(book, name) || !lab.IsAncestor(publisher, name) {
		t.Error("ancestor evaluation failed")
	}
	if lab.IsAncestor(name, book) || lab.IsAncestor(name, name) {
		t.Error("ancestor must be proper and directional")
	}
	if !lab.IsParent(editor, name) || lab.IsParent(publisher, name) {
		t.Error("parent evaluation failed")
	}
	if !lab.IsSibling(name, address) || lab.IsSibling(name, editor) || lab.IsSibling(name, name) {
		t.Error("sibling evaluation failed")
	}
	if lvl, ok := lab.Level(title); !ok || lvl != 1 {
		t.Errorf("title level = %d/%v, want 1", lvl, ok)
	}
	if lvl, _ := lab.Level(book); lvl != 0 {
		t.Errorf("book level = %d, want 0", lvl)
	}
}

func TestPrefixCompareAgainstDocOrder(t *testing.T) {
	doc := xmltree.Generate(xmltree.GenOptions{Seed: 3, MaxDepth: 4, MaxChildren: 5, AttrProb: 0.4})
	lab := dewey.New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	if err := labeling.VerifyOrder(lab, doc); err != nil {
		t.Fatal(err)
	}
	// Cross-check arbitrary pairs, not just adjacent ones.
	nodes := doc.LabelledNodes()
	for i := 0; i < len(nodes); i += 3 {
		for j := 0; j < len(nodes); j += 5 {
			got := lab.Compare(lab.Label(nodes[i]), lab.Label(nodes[j]))
			want := xmltree.DocOrderCompare(nodes[i], nodes[j])
			if got != want {
				t.Fatalf("Compare(%s,%s)=%d, want %d", nodes[i].Name(), nodes[j].Name(), got, want)
			}
		}
	}
}

func TestPrefixDeletionForgetsLabels(t *testing.T) {
	doc := xmltree.SampleBook()
	s, err := update.NewSession(doc, dewey.New())
	if err != nil {
		t.Fatal(err)
	}
	pub := doc.FindElement("publisher")
	if err := s.Delete(pub); err != nil {
		t.Fatal(err)
	}
	if s.Labeling().Label(pub) != nil {
		t.Error("deleted subtree still labelled")
	}
	if got := s.Counters().Deletes; got != 6 {
		t.Errorf("deleted labellable count = %d, want 6", got)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixBadAlgebraPropagates(t *testing.T) {
	// A 4-bit Dewey cannot bulk-assign 20 siblings: Build must fail.
	lab := prefix.New(prefix.Config{
		Name: "tiny-dewey",
		Algebra: labels.MustIntAlgebra(labels.IntAlgebraConfig{
			Name: "tiny-int", Start: 1, Gap: 1, Width: 4,
		}),
	})
	doc := xmltree.GenerateWide(20)
	if err := lab.Build(doc); err == nil {
		t.Fatal("expected bulk-assign overflow error")
	}
}
