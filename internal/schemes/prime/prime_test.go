package prime

import (
	"testing"

	"xmldyn/internal/labeling"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

func TestBuildAndOrder(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	if err := labeling.VerifyOrder(lab, doc); err != nil {
		t.Fatal(err)
	}
}

func TestDivisibilityAncestry(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	nodes := doc.LabelledNodes()
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			got := lab.IsAncestor(lab.Label(u), lab.Label(v))
			if got != u.IsAncestorOf(v) {
				t.Fatalf("IsAncestor(%s,%s)=%v, truth %v", u.Name(), v.Name(), got, u.IsAncestorOf(v))
			}
		}
	}
	editor := lab.Label(doc.FindElement("editor"))
	name := lab.Label(doc.FindElement("name"))
	if !lab.IsParent(editor, name) {
		t.Error("parent test failed")
	}
	if lvl, ok := lab.Level(name); !ok || lvl != 3 {
		t.Errorf("level = %d/%v", lvl, ok)
	}
}

// TestPersistentLabelsUnderUpdates: the prime scheme's selling point —
// insertions recompute the SC order value but never touch existing
// labels.
func TestPersistentLabelsUnderUpdates(t *testing.T) {
	doc := xmltree.ExampleTree()
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	before := labeling.Snapshot(lab, doc)
	c1 := doc.FindElement("c1")
	for i := 0; i < 10; i++ {
		if _, err := s.InsertAfter(c1, "p"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.InsertFirstChild(doc.Root(), "front"); err != nil {
		t.Fatal(err)
	}
	after := labeling.Snapshot(lab, doc)
	for n, old := range before {
		if after[n] != old {
			t.Fatalf("label of %s changed: %s -> %s", n.Name(), old, after[n])
		}
	}
	if st := lab.Stats(); st.Relabeled != 0 {
		t.Fatalf("prime relabelled %d nodes", st.Relabeled)
	}
	if lab.SCRecomputes < 11 {
		t.Errorf("SC recomputations = %d, want >= 11 (one per insertion)", lab.SCRecomputes)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeletionKeepsOrder(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(doc.FindElement("editor")); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSieve(t *testing.T) {
	ps := sieve(30)
	want := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(ps) != len(want) {
		t.Fatalf("sieve(30): %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("sieve(30)[%d]=%d, want %d", i, ps[i], want[i])
		}
	}
}

func TestLabelBitsGrowWithDepth(t *testing.T) {
	doc := xmltree.GenerateDeep(8)
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	shallow := lab.Label(doc.Root()).Bits()
	var deepest *xmltree.Node
	doc.WalkLabelled(func(n *xmltree.Node) bool { deepest = n; return true })
	if deep := lab.Label(deepest).Bits(); deep <= shallow {
		t.Errorf("deep label bits %d should exceed root bits %d (prime products accumulate)", deep, shallow)
	}
}
