// Package prime implements the prime number labelling scheme of Wu, Lee
// & Hsu [25], one of the two schemes the paper's conclusion queues up for
// evaluation under its framework. Each node owns a distinct prime; its
// label is the product of the primes on its root path, so the
// ancestor-descendant test is a single divisibility check and labels are
// never changed by insertions. Document order is not in the label: it is
// carried by a simultaneous congruence (SC) value, recomputed via the
// Chinese Remainder Theorem whenever order changes — the scheme's
// characteristic trade-off (persistent labels, expensive order
// maintenance).
package prime

import (
	"errors"
	"fmt"
	"math/big"

	"xmldyn/internal/labeling"
	"xmldyn/internal/xmltree"
)

// Label is a prime-product label.
type Label struct {
	// Self is the node's own prime.
	Self *big.Int
	// Value is the product of the primes on the path from the root.
	Value *big.Int
	// Lvl is the nesting depth, stored alongside the product (counting
	// prime factors would need factorisation).
	Lvl int
	// ord is the labeling's shared order state.
	ord *orderState
}

// String renders "self:product".
func (l Label) String() string { return fmt.Sprintf("%s:%s", l.Self, l.Value) }

// Bits implements labeling.Label: the product's magnitude plus the
// self-prime.
func (l Label) Bits() int { return l.Value.BitLen() + l.Self.BitLen() + 8 }

// orderState holds the simultaneous congruence value shared by all
// labels of one document.
type orderState struct {
	sc *big.Int
}

// Labeling is the prime labeling bound to one document.
type Labeling struct {
	doc       *xmltree.Document
	lab       map[*xmltree.Node]Label
	primes    []*big.Int
	nextPrime int
	ord       *orderState
	stats     labeling.Stats
	// SCRecomputes counts CRT recomputations: the cost centre the
	// scheme trades label persistence for.
	SCRecomputes int64
}

// New returns an unbound prime labeling.
func New() *Labeling {
	return &Labeling{lab: make(map[*xmltree.Node]Label), ord: &orderState{sc: big.NewInt(0)}}
}

// Name implements labeling.Interface.
func (pl *Labeling) Name() string { return "prime" }

// Stats implements labeling.Interface.
func (pl *Labeling) Stats() *labeling.Stats { return &pl.stats }

// Build implements labeling.Interface.
func (pl *Labeling) Build(doc *xmltree.Document) error {
	pl.doc = doc
	pl.lab = make(map[*xmltree.Node]Label, doc.LabelledCount())
	pl.stats.Reset()
	n := doc.LabelledCount()
	// Headroom: document-order ranks must stay below every node's
	// prime for the CRT order values to decode; skipping the primes
	// below 64n leaves room for 63n further insertions before the
	// re-priming fallback fires.
	floor := int64(64 * n)
	if floor < 256 {
		floor = 256
	}
	pl.ensurePrimes(floor)
	pl.nextPrime = lowerBoundPrime(pl.primes, floor)
	doc.WalkLabelled(func(x *xmltree.Node) bool {
		p := pl.takePrime()
		parentValue := big.NewInt(1)
		if par := xmltree.LabelledParent(x); par != nil {
			parentValue = pl.lab[par].Value
		}
		v := new(big.Int).Mul(parentValue, p)
		pl.lab[x] = Label{Self: p, Value: v, Lvl: x.Depth(), ord: pl.ord}
		pl.stats.Assigned++
		return true
	})
	return pl.recomputeSC()
}

// Label implements labeling.Interface.
func (pl *Labeling) Label(n *xmltree.Node) labeling.Label {
	l, ok := pl.lab[n]
	if !ok {
		return nil
	}
	return l
}

// Compare implements labeling.Interface: ranks are recovered from the
// shared SC value by a modulo with each label's prime.
func (pl *Labeling) Compare(a, b labeling.Label) int {
	la, lb := a.(Label), b.(Label)
	ra := new(big.Int).Mod(la.ord.sc, la.Self)
	rb := new(big.Int).Mod(lb.ord.sc, lb.Self)
	return ra.Cmp(rb)
}

// IsAncestor implements labeling.AncestorByLabel: u is an ancestor of v
// iff v's product is divisible by u's product (and they differ).
func (pl *Labeling) IsAncestor(a, d labeling.Label) bool {
	la, ld := a.(Label), d.(Label)
	if la.Value.Cmp(ld.Value) == 0 {
		return false
	}
	m := new(big.Int)
	_, m = new(big.Int).DivMod(ld.Value, la.Value, m)
	return m.Sign() == 0
}

// IsParent implements labeling.ParentByLabel.
func (pl *Labeling) IsParent(p, c labeling.Label) bool {
	lp, lc := p.(Label), c.(Label)
	return pl.IsAncestor(p, c) && lp.Lvl == lc.Lvl-1
}

// Level implements labeling.LevelByLabel.
func (pl *Labeling) Level(l labeling.Label) (int, bool) { return l.(Label).Lvl, true }

// NodeInserted implements labeling.Interface: the new node takes a fresh
// prime — no existing label changes — and the SC value is recomputed for
// the new document order. Should the document outgrow the prime
// headroom (ranks no longer below every prime), the whole document is
// re-primed: the one situation in which the scheme relabels.
func (pl *Labeling) NodeInserted(n *xmltree.Node) error {
	par := xmltree.LabelledParent(n)
	parentValue := big.NewInt(1)
	if par != nil {
		l, ok := pl.lab[par]
		if !ok {
			return fmt.Errorf("prime: parent of %q is unlabelled", n.Name())
		}
		parentValue = l.Value
	}
	p := pl.takePrime()
	pl.lab[n] = Label{Self: p, Value: new(big.Int).Mul(parentValue, p), Lvl: n.Depth(), ord: pl.ord}
	pl.stats.Assigned++
	if err := pl.recomputeSC(); err != nil {
		if errors.Is(err, errNeedReprime) {
			return pl.reprime()
		}
		return err
	}
	return nil
}

// errNeedReprime signals that ranks have outgrown the prime headroom.
var errNeedReprime = errors.New("prime: rank space outgrew prime headroom")

// reprime reassigns every prime with fresh headroom; every existing
// label changes, which the stats record as a relabel event.
func (pl *Labeling) reprime() error {
	existing := int64(len(pl.lab))
	saved := pl.stats
	saved.RelabelEvents++
	if existing > 0 {
		saved.Relabeled += existing - 1 // all but the just-inserted node
	}
	if err := pl.Build(pl.doc); err != nil {
		pl.stats = saved
		return fmt.Errorf("prime: reprime: %w", err)
	}
	pl.stats = saved
	return nil
}

// NodeDeleting implements labeling.Interface. Remaining labels and even
// the SC value stay valid (surviving ranks keep their relative order).
func (pl *Labeling) NodeDeleting(n *xmltree.Node) {
	delete(pl.lab, n)
	for _, a := range n.Attributes() {
		delete(pl.lab, a)
	}
	for _, c := range n.Children() {
		if c.Kind() == xmltree.KindElement {
			pl.NodeDeleting(c)
		}
	}
}

// recomputeSC rebuilds the simultaneous congruence value: SC ≡ rank(v)
// (mod prime(v)) for every labelled node v, via CRT.
func (pl *Labeling) recomputeSC() error {
	pl.SCRecomputes++
	modulus := big.NewInt(1)
	sc := big.NewInt(0)
	rank := int64(1)
	var err error
	pl.doc.WalkLabelled(func(x *xmltree.Node) bool {
		l, ok := pl.lab[x]
		if !ok {
			// Mid-subtree insertion: later nodes of the batch are not
			// yet labelled; the batch's final insertion recomputes the
			// SC over the complete set.
			return true
		}
		if l.Self.Cmp(big.NewInt(rank)) <= 0 {
			err = fmt.Errorf("%w: rank %d not below prime %s", errNeedReprime, rank, l.Self)
			return false
		}
		// CRT step: sc' ≡ sc (mod modulus), sc' ≡ rank (mod p).
		p := l.Self
		inv := new(big.Int).ModInverse(modulus, p)
		if inv == nil {
			err = fmt.Errorf("prime: modulus not invertible mod %s", p)
			return false
		}
		diff := new(big.Int).Sub(big.NewInt(rank), sc)
		diff.Mod(diff, p)
		t := new(big.Int).Mul(diff, inv)
		t.Mod(t, p)
		sc.Add(sc, new(big.Int).Mul(t, modulus))
		modulus.Mul(modulus, p)
		rank++
		return true
	})
	if err != nil {
		return err
	}
	pl.ord.sc = sc
	return nil
}

// takePrime hands out the next unused prime.
func (pl *Labeling) takePrime() *big.Int {
	if pl.nextPrime >= len(pl.primes) {
		pl.ensurePrimes(int64(len(pl.primes)) * 4)
	}
	p := pl.primes[pl.nextPrime]
	pl.nextPrime++
	return p
}

// ensurePrimes grows the prime table to cover values up to at least n.
func (pl *Labeling) ensurePrimes(n int64) {
	if n < 64 {
		n = 64
	}
	limit := 4 * n // primes are denser than 1 in 4·ln below small bounds
	for {
		ps := sieve(limit)
		if int64(len(ps)) > 0 && ps[len(ps)-1] > n {
			pl.primes = pl.primes[:0]
			for _, v := range ps {
				pl.primes = append(pl.primes, big.NewInt(v))
			}
			return
		}
		limit *= 2
	}
}

// sieve returns all primes up to limit.
func sieve(limit int64) []int64 {
	composite := make([]bool, limit+1)
	var out []int64
	for i := int64(2); i <= limit; i++ {
		if composite[i] {
			continue
		}
		out = append(out, i)
		for j := i * i; j <= limit; j += i {
			composite[j] = true
		}
	}
	return out
}

// lowerBoundPrime returns the index of the first prime > bound.
func lowerBoundPrime(primes []*big.Int, bound int64) int {
	b := big.NewInt(bound)
	lo, hi := 0, len(primes)
	for lo < hi {
		mid := (lo + hi) / 2
		if primes[mid].Cmp(b) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Factory returns fresh prime labelings.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
