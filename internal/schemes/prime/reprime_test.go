package prime

import (
	"testing"

	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestReprimeFallback drives the document far past the prime headroom
// so ranks outgrow the smallest prime; the labeling must re-prime
// everything (counting a relabel event) instead of failing, and order
// must survive.
func TestReprimeFallback(t *testing.T) {
	doc, err := xmltree.ParseString("<r><a/><b/></r>")
	if err != nil {
		t.Fatal(err)
	}
	lab := New()
	s, err := update.NewSession(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	// Initial size 3 -> prime floor 256. Front insertions push the
	// *original* nodes' document-order ranks upward until one crosses
	// its own (small) prime — appends would never conflict, since the
	// early-prime nodes keep their early ranks.
	for i := 0; i < 300; i++ {
		if _, err := s.InsertFirstChild(doc.Root(), "n"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := lab.Stats()
	if st.RelabelEvents == 0 || st.Relabeled == 0 {
		t.Fatalf("expected a re-prime event: %+v", *st)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Ancestry still decides by divisibility after the re-prime.
	r := lab.Label(doc.Root())
	kid := lab.Label(doc.Root().FirstChild())
	if !lab.IsAncestor(r, kid) {
		t.Fatal("ancestry broken after re-prime")
	}
}

func TestIsAncestorRejectsEqualValues(t *testing.T) {
	doc := xmltree.SampleBook()
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	l := lab.Label(doc.FindElement("editor"))
	if lab.IsAncestor(l, l) {
		t.Fatal("node cannot be its own ancestor")
	}
}

func TestLowerBoundPrime(t *testing.T) {
	lab := New()
	lab.ensurePrimes(100)
	idx := lowerBoundPrime(lab.primes, 50)
	if lab.primes[idx].Int64() <= 50 {
		t.Fatalf("lower bound: %v", lab.primes[idx])
	}
	if idx > 0 && lab.primes[idx-1].Int64() > 50 {
		t.Fatalf("not the first prime above 50: %v", lab.primes[idx-1])
	}
}
