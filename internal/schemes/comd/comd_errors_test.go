package comd

import (
	"errors"
	"strings"
	"testing"

	"xmldyn/internal/labels"
)

func TestAlgebraMetadata(t *testing.T) {
	a := NewAlgebra()
	if a.Name() != "com-d" {
		t.Errorf("name: %s", a.Name())
	}
	if a.Counters() == nil {
		t.Error("counters nil")
	}
	if a.Traits().Encoding != labels.RepVariable {
		t.Error("encoding")
	}
}

func TestForeignCodesRejected(t *testing.T) {
	a := NewAlgebra()
	if _, err := a.Between(labels.QString("2"), nil); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign left: %v", err)
	}
	if _, err := a.Between(nil, labels.BitString("01")); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign right: %v", err)
	}
}

func TestCompressedBudgetBeatsRawBudget(t *testing.T) {
	// LSDX's raw 255-letter budget overflows under skewed growth;
	// Com-D's compressed budget doesn't, because "300 b's" compresses
	// to a few bytes — the entire point of the upgrade.
	a := NewAlgebra()
	cs, err := a.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	r := cs[0]
	for i := 0; i < 400; i++ {
		m, err := a.Between(nil, r)
		if err != nil {
			t.Fatalf("Com-D overflowed at %d: %v", i, err)
		}
		r = m
	}
	if raw := r.(Code).Raw(); len(raw) < 400 {
		t.Fatalf("raw letters: %d", len(raw))
	}
	if r.Bits() > 8*16 {
		t.Fatalf("compressed bits: %d", r.Bits())
	}
}

func TestAssignOrderedAndCompressedRender(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(30)
	if err != nil {
		t.Fatal(err)
	}
	if i := labels.CheckAscending(cs, a.Compare); i != -1 {
		t.Fatalf("unsorted at %d", i)
	}
	long := Code{raw: strings.Repeat("z", 30)}
	if got := long.String(); got != "30z" {
		t.Errorf("compressed render: %s", got)
	}
}
