package comd

import (
	"strings"
	"testing"

	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/lsdx"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

func TestRenderMatchesLSDXShape(t *testing.T) {
	doc := xmltree.ExampleTree()
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(doc.Root()).String(); got != "0a" {
		t.Errorf("root: %s", got)
	}
	if got := lab.Label(doc.FindElement("c1")).String(); got != "2ad.b" {
		t.Errorf("c1: %s", got)
	}
}

// TestCompressionShrinksRepetitiveLabels: the Com-D upgrade is visible
// exactly when LSDX labels grow repetitive letters — e.g. under skewed
// before-first insertions, which prefix 'a' each time.
func TestCompressionShrinksRepetitiveLabels(t *testing.T) {
	la := lsdx.NewAlgebra()
	ca := NewAlgebra()
	lCode, err := la.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	cCode, err := ca.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	l, c := lCode[0], cCode[0]
	for i := 0; i < 40; i++ {
		l, err = la.Between(nil, l)
		if err != nil {
			t.Fatal(err)
		}
		c, err = ca.Between(nil, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	if c.(Code).Raw() != l.String() {
		t.Fatalf("Com-D letters diverged from LSDX: %q vs %q", c.(Code).Raw(), l)
	}
	if c.Bits() >= l.Bits() {
		t.Errorf("compressed bits %d !< raw bits %d", c.Bits(), l.Bits())
	}
	if !strings.HasPrefix(c.String(), "40a") {
		t.Errorf("compressed form: %s", c)
	}
}

func TestInheritsCollisionDefect(t *testing.T) {
	a := NewAlgebra()
	x, err := a.Between(Code{raw: "b"}, Code{raw: "c"})
	if err != nil {
		t.Fatal(err)
	}
	y, err := a.Between(Code{raw: "b"}, x)
	if err != nil {
		t.Fatal(err)
	}
	if a.Compare(x, y) != 0 {
		t.Fatalf("expected the inherited LSDX collision, got %s and %s", x, y)
	}
}

func TestSessionStorm(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.AppendChild(doc.FindElement("b"), "k"); err != nil {
			t.Fatal(err)
		}
	}
	// Append-only storms stay collision-free: order must hold.
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if st := s.Labeling().Stats(); st.Relabeled != 0 {
		t.Fatalf("Com-D relabelled: %+v", *st)
	}
}

func TestCodeRoundTrip(t *testing.T) {
	c := Code{raw: "aaabcbc"}
	compressed := c.String()
	back, err := labels.DecompressRuns(compressed)
	if err != nil {
		t.Fatal(err)
	}
	if back != c.Raw() {
		t.Fatalf("round trip: %q -> %q -> %q", c.Raw(), compressed, back)
	}
}
