// Package comd implements the Compressed Dynamic Labelling Scheme
// (Com-D) of Duong & Zhang [8] (paper §3.1.2): LSDX labels whose
// repetitive letters are run-length compressed for storage —
// "aaaaabcbcbcdddde" becomes "5a3(bc)4de". Comparisons operate on the
// decompressed letters; only the storage cost changes. Com-D inherits
// LSDX's insertion rules and therefore also its uniqueness defect.
package comd

import (
	"fmt"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/lsdx"
	"xmldyn/internal/schemes/prefix"
)

// Code is a Com-D positional identifier: LSDX letters stored compressed.
type Code struct {
	raw string // decompressed letters
}

// String renders the compressed storage form.
func (c Code) String() string { return labels.CompressRuns(c.raw) }

// Raw returns the decompressed letter string.
func (c Code) Raw() string { return c.raw }

// Bits implements labels.Code: bytes of the compressed form.
func (c Code) Bits() int { return 8 * len(labels.CompressRuns(c.raw)) }

// MaxCompressedBytes bounds the *compressed* storage of one code —
// Com-D's point is that the budget applies after compression, so runs
// of repeated letters no longer exhaust it.
const MaxCompressedBytes = 255

// Algebra wraps the LSDX algebra with compressed codes.
type Algebra struct {
	inner *lsdx.Algebra
}

// NewAlgebra returns a fresh algebra. The inner LSDX algebra runs
// unbounded; the compressed-size budget is enforced here.
func NewAlgebra() *Algebra { return &Algebra{inner: lsdx.NewUnboundedAlgebra()} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "com-d" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return a.inner.Counters() }

// Traits implements labels.Algebra: as LSDX, with the compact storage
// upgrade the authors proposed.
func (a *Algebra) Traits() labels.Traits {
	t := a.inner.Traits()
	return t
}

// Assign implements labels.Algebra.
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	cs, err := a.inner.Assign(n)
	if err != nil {
		return nil, err
	}
	out := make([]labels.Code, len(cs))
	for i, c := range cs {
		out[i] = Code{raw: c.String()}
	}
	return out, nil
}

// Between implements labels.Algebra.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	l, err := unwrap(left)
	if err != nil {
		return nil, err
	}
	r, err := unwrap(right)
	if err != nil {
		return nil, err
	}
	m, err := a.inner.Between(l, r)
	if err != nil {
		return nil, err
	}
	out := Code{raw: m.String()}
	if compressed := labels.CompressRuns(out.raw); len(compressed) > MaxCompressedBytes {
		return nil, fmt.Errorf("%w: Com-D compressed code of %d bytes exceeds the %d-byte budget",
			labels.ErrOverflow, len(compressed), MaxCompressedBytes)
	}
	return out, nil
}

// Compare implements labels.Algebra on the decompressed letters.
func (a *Algebra) Compare(x, y labels.Code) int {
	cx, cy := x.(Code), y.(Code)
	switch {
	case cx.raw < cy.raw:
		return -1
	case cx.raw > cy.raw:
		return 1
	default:
		return 0
	}
}

func unwrap(c labels.Code) (labels.Code, error) {
	if c == nil {
		return nil, nil
	}
	cc, ok := c.(Code)
	if !ok {
		return nil, fmt.Errorf("%w: %T is not a Com-D code", labels.ErrBadCode, c)
	}
	return lsdx.Code(cc.raw), nil
}

// Render formats a Com-D label like LSDX but with compressed components.
func Render(codes []labels.Code) string {
	conv := make([]labels.Code, len(codes))
	for i, c := range codes {
		conv[i] = lsdx.Code(labels.CompressRuns(c.(Code).raw))
	}
	return lsdx.Render(conv)
}

// New returns a Com-D labeling.
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:     "com-d",
		Algebra:  NewAlgebra(),
		Render:   Render,
		RootCode: Code{raw: string(lsdx.RootCode)},
	})
}

// Factory returns fresh Com-D instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
