package ordpath

import (
	"fmt"
	"math/bits"

	"xmldyn/internal/labels"
)

// Binary codec for ORDPATH codes: the compressed representation the
// paper's §3.1.2 mentions ("ORDPATH labels are not stored as
// dotted-decimal strings but rather in compressed binary representation
// to enable efficient XPath evaluations"). Each component is a 3-bit
// bucket selector followed by the zigzagged value in the bucket's
// payload width; a code is the concatenation of its components, padded
// to a byte boundary, preceded by a LEB128 bit count.

// EncodeBinary packs a code into bytes.
func EncodeBinary(c Code) ([]byte, error) {
	var bitsBuf []byte // one byte per bit
	for _, v := range c.comps {
		z := uint64(v<<1) ^ uint64(v>>63)
		s := bits.Len64(z)
		if s == 0 {
			s = 1
		}
		bucket := -1
		for i, w := range payloadWidths {
			if s <= w {
				bucket = i
				break
			}
		}
		if bucket < 0 {
			return nil, fmt.Errorf("%w: component %d exceeds the largest bucket", labels.ErrOverflow, v)
		}
		for i := prefixBits - 1; i >= 0; i-- {
			bitsBuf = append(bitsBuf, byte(bucket>>i&1))
		}
		w := payloadWidths[bucket]
		for i := w - 1; i >= 0; i-- {
			bitsBuf = append(bitsBuf, byte(z>>i&1))
		}
	}
	out := labels.EncodeLEB128(uint64(len(bitsBuf)))
	var cur byte
	for i, b := range bitsBuf {
		cur = cur<<1 | b
		if i%8 == 7 {
			out = append(out, cur)
			cur = 0
		}
	}
	if rem := len(bitsBuf) % 8; rem != 0 {
		out = append(out, cur<<(8-rem))
	}
	return out, nil
}

// DecodeBinary unpacks a code produced by EncodeBinary, returning the
// code and the number of bytes consumed.
func DecodeBinary(data []byte) (Code, int, error) {
	total, n, err := labels.DecodeLEB128(data)
	if err != nil {
		return Code{}, 0, fmt.Errorf("%w: ORDPATH bit count: %v", labels.ErrBadCode, err)
	}
	payload := data[n:]
	if total > uint64(len(payload))*8 {
		return Code{}, 0, fmt.Errorf("%w: truncated ORDPATH code", labels.ErrBadCode)
	}
	bitAt := func(i uint64) uint64 {
		return uint64(payload[i/8] >> (7 - i%8) & 1)
	}
	var comps []int64
	var pos uint64
	for pos < total {
		if pos+prefixBits > total {
			return Code{}, 0, fmt.Errorf("%w: dangling ORDPATH prefix", labels.ErrBadCode)
		}
		bucket := 0
		for i := 0; i < prefixBits; i++ {
			bucket = bucket<<1 | int(bitAt(pos))
			pos++
		}
		w := payloadWidths[bucket]
		if pos+uint64(w) > total {
			return Code{}, 0, fmt.Errorf("%w: truncated ORDPATH payload", labels.ErrBadCode)
		}
		var z uint64
		for i := 0; i < w; i++ {
			z = z<<1 | bitAt(pos)
			pos++
		}
		v := int64(z>>1) ^ -int64(z&1)
		comps = append(comps, v)
	}
	code, err := NewCode(comps...)
	if err != nil {
		return Code{}, 0, err
	}
	consumed := n + int((total+7)/8)
	return code, consumed, nil
}
