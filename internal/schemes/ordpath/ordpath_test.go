package ordpath

import (
	"errors"
	"math/rand"
	"testing"

	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestFigure4ORDPATH reproduces the paper's Figure 4: the example tree
// bulk-labelled with odd components, then the three grey insertions —
// before-first under A (1.1.-1), after-last under B (1.3.3) and the
// careted middle insertion under C (1.5.2.1).
func TestFigure4ORDPATH(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	lab := s.Labeling()
	wantBase := map[string]string{
		"r": "1",
		"a": "1.1", "b": "1.3", "c": "1.5",
		"a1": "1.1.1", "a2": "1.1.3",
		"b1": "1.3.1",
		"c1": "1.5.1", "c2": "1.5.3", "c3": "1.5.5",
	}
	doc.WalkLabelled(func(n *xmltree.Node) bool {
		if got := lab.Label(n).String(); got != wantBase[n.Name()] {
			t.Errorf("base %s: got %s, want %s", n.Name(), got, wantBase[n.Name()])
		}
		return true
	})

	// Grey node 1: before the first child of A -> negative component.
	n1, err := s.InsertFirstChild(doc.FindElement("a"), "g1")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(n1).String(); got != "1.1.-1" {
		t.Errorf("before-first: got %s, want 1.1.-1", got)
	}
	// Grey node 2: after the last child of B -> +2.
	n2, err := s.AppendChild(doc.FindElement("b"), "g2")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(n2).String(); got != "1.3.3" {
		t.Errorf("after-last: got %s, want 1.3.3", got)
	}
	// Grey node 3: between c1 (1.5.1) and c2 (1.5.3) -> caret 2 then 1.
	n3, err := s.InsertAfter(doc.FindElement("c1"), "g3")
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Label(n3).String(); got != "1.5.2.1" {
		t.Errorf("careting-in: got %s, want 1.5.2.1", got)
	}
	// ORDPATH never relabels for these insertions.
	if st := lab.Stats(); st.Relabeled != 0 {
		t.Errorf("ORDPATH relabelled %d nodes", st.Relabeled)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCodeGrammar(t *testing.T) {
	if _, err := NewCode(); !errors.Is(err, labels.ErrBadCode) {
		t.Error("empty code accepted")
	}
	if _, err := NewCode(2, 1); err != nil {
		t.Errorf("valid caret code rejected: %v", err)
	}
	if _, err := NewCode(1, 1); !errors.Is(err, labels.ErrBadCode) {
		t.Error("odd non-terminal accepted")
	}
	if _, err := NewCode(2); !errors.Is(err, labels.ErrBadCode) {
		t.Error("even terminal accepted")
	}
	c, err := NewCode(2, -4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "2.-4.7" {
		t.Errorf("render: %s", c)
	}
	if got := c.Components(); len(got) != 3 || got[1] != -4 {
		t.Errorf("components: %v", got)
	}
}

// TestBetweenProperty hammers Between with random neighbour picks and
// checks strict betweenness, grammar validity and overall order.
func TestBetweenProperty(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(3)
	if err != nil {
		t.Fatal(err)
	}
	codes := cs
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		k := rng.Intn(len(codes) + 1)
		var l, r labels.Code
		if k > 0 {
			l = codes[k-1]
		}
		if k < len(codes) {
			r = codes[k]
		}
		m, err := a.Between(l, r)
		if err != nil {
			if errors.Is(err, labels.ErrOverflow) {
				continue // budget exhausted at this position; expected
			}
			t.Fatalf("step %d: %v", i, err)
		}
		mc := m.(Code)
		if _, err := NewCode(mc.comps...); err != nil {
			t.Fatalf("step %d: invalid grammar %s: %v", i, mc, err)
		}
		if l != nil && a.Compare(l, m) >= 0 {
			t.Fatalf("step %d: %s not > %s", i, m, l)
		}
		if r != nil && a.Compare(m, r) >= 0 {
			t.Fatalf("step %d: %s not < %s", i, m, r)
		}
		codes = append(codes, nil)
		copy(codes[k+1:], codes[k:])
		codes[k] = m
	}
	if i := labels.CheckAscending(codes, a.Compare); i != -1 {
		t.Fatalf("sequence unsorted at %d", i)
	}
}

// TestOddNumberingWastesHalf quantifies the §3.1.2 observation: initial
// ORDPATH labels use only odd numbers, so for n children the largest
// component is 2n-1 — twice what a dense numbering needs.
func TestOddNumberingWastesHalf(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(100)
	if err != nil {
		t.Fatal(err)
	}
	last := cs[99].(Code)
	if last.comps[0] != 199 {
		t.Errorf("last bulk component = %d, want 199", last.comps[0])
	}
}

func TestSkewedCaretingOverflows(t *testing.T) {
	// Repeatedly inserting between the two *newest* neighbours deepens
	// the caret chain until the code's bit budget is exhausted: the §4
	// overflow problem for a variable-length scheme.
	a := NewAlgebra()
	cs, err := a.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	l, r := cs[0], cs[1]
	sawOverflow := false
	for i := 0; i < 300; i++ {
		m, err := a.Between(l, r)
		if err != nil {
			if errors.Is(err, labels.ErrOverflow) {
				sawOverflow = true
				break
			}
			t.Fatal(err)
		}
		// Alternate which side the new code bounds to force depth.
		if i%2 == 0 {
			r = m
		} else {
			l = m
		}
	}
	if !sawOverflow {
		t.Fatal("expected caret-depth overflow within 300 adversarial insertions")
	}
	if a.Counters().OverflowHits == 0 {
		t.Error("overflow not counted")
	}
}

func TestLevelFromOddComponents(t *testing.T) {
	doc := xmltree.ExampleTree()
	lab := New()
	if err := lab.Build(doc); err != nil {
		t.Fatal(err)
	}
	c1 := doc.FindElement("c1")
	pathOf := func(n *xmltree.Node) []labels.Code {
		type pathLabel interface {
			Len() int
			Code(int) labels.Code
		}
		pl := lab.Label(n).(pathLabel)
		out := make([]labels.Code, pl.Len())
		for i := range out {
			out[i] = pl.Code(i)
		}
		return out
	}
	if got := Level(pathOf(c1)); got != 2 {
		t.Errorf("c1 level = %d, want 2", got)
	}
	if got := Level(pathOf(doc.Root())); got != 0 {
		t.Errorf("root level = %d, want 0", got)
	}
}

func TestCompressedBitsGrowWithMagnitude(t *testing.T) {
	small, _ := NewCode(1)
	big, _ := NewCode(100001)
	if small.Bits() >= big.Bits() {
		t.Errorf("bits(1)=%d should be < bits(100001)=%d", small.Bits(), big.Bits())
	}
	caret, _ := NewCode(2, 1)
	if caret.Bits() <= small.Bits() {
		t.Error("caret code should cost more than a single component")
	}
}
