package ordpath

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"xmldyn/internal/labels"
)

func TestBinaryRoundTrip(t *testing.T) {
	cases := [][]int64{
		{1}, {3}, {-1}, {199}, {2, 1}, {2, -3}, {0, 1}, {2, 2, 1}, {-4, 1},
		{1<<20 + 1}, {-(1 << 20) + 1},
	}
	for _, comps := range cases {
		c, err := NewCode(comps...)
		if err != nil {
			t.Fatalf("%v: %v", comps, err)
		}
		data, err := EncodeBinary(c)
		if err != nil {
			t.Fatalf("%v: %v", comps, err)
		}
		got, n, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("%v: %v", comps, err)
		}
		if n != len(data) {
			t.Errorf("%v: consumed %d of %d", comps, n, len(data))
		}
		if got.String() != c.String() {
			t.Errorf("round trip: %s -> %s", c, got)
		}
	}
}

// TestBinaryRoundTripAfterStorm round-trips every code produced by an
// insertion storm.
func TestBinaryRoundTripAfterStorm(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(4)
	if err != nil {
		t.Fatal(err)
	}
	codes := cs
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		k := rng.Intn(len(codes) + 1)
		var l, r labels.Code
		if k > 0 {
			l = codes[k-1]
		}
		if k < len(codes) {
			r = codes[k]
		}
		m, err := a.Between(l, r)
		if err != nil {
			continue // overflow budget: fine
		}
		codes = append(codes, nil)
		copy(codes[k+1:], codes[k:])
		codes[k] = m
	}
	for _, c := range codes {
		oc := c.(Code)
		data, err := EncodeBinary(oc)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("%s: %v", oc, err)
		}
		if got.String() != oc.String() {
			t.Fatalf("%s -> %s", oc, got)
		}
		// The size model agrees with the real encoding (modulo the
		// LEB128 length frame and byte padding).
		if 8*len(data) < oc.Bits() {
			t.Fatalf("%s: model %d bits > encoded %d bits", oc, oc.Bits(), 8*len(data))
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	valid, err := EncodeBinary(Code{comps: []int64{2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range [][]byte{
		nil,
		{0xFF},               // truncated LEB128
		{40},                 // claims 40 bits, no payload
		valid[:len(valid)-1], // truncated payload
	} {
		if _, _, err := DecodeBinary(data); !errors.Is(err, labels.ErrBadCode) {
			t.Errorf("%v: %v", data, err)
		}
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		comps := make([]int64, len(raw))
		for i, v := range raw[:len(raw)-1] {
			comps[i] = int64(v) &^ 1 // evens for carets
		}
		last := int64(raw[len(raw)-1]) | 1 // odd terminal
		comps[len(comps)-1] = last
		c, err := NewCode(comps...)
		if err != nil {
			return false
		}
		data, err := EncodeBinary(c)
		if err != nil {
			return false
		}
		got, _, err := DecodeBinary(data)
		return err == nil && got.String() == c.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
