// Package ordpath implements the ORDPATH labelling scheme of O'Neil et
// al. [18] (paper §3.1.2, Figure 4). Positional identifiers are
// component sequences obeying the grammar (even)* odd: initial loading
// uses positive odd integers, and insertions between consecutive odds
// "caret in" through the reserved even values, e.g. a node inserted
// between 1.5.1 and 1.5.3 becomes 1.5.2.1. Codes are stored in a
// prefix-free compressed binary form; the fixed budget of that form is
// what keeps ORDPATH subject to the overflow problem (§4).
package ordpath

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/prefix"
)

// MaxCodeBits bounds the compressed size of a single positional
// identifier (the length budget of the storage format).
const MaxCodeBits = 255

// payload widths of the compressed component encoding, selected by a
// 3-bit prefix (a simplified version of the published Li/Lj bucket
// table; DESIGN.md §5 records the substitution).
var payloadWidths = [...]int{3, 6, 9, 12, 18, 24, 36, 48}

// prefixBits is the size of the bucket selector.
const prefixBits = 3

// componentBits returns the compressed size of one component value.
func componentBits(v int64) (int, error) {
	z := uint64(v<<1) ^ uint64(v>>63) // zigzag: small magnitudes stay small
	s := bits.Len64(z)
	if s == 0 {
		s = 1
	}
	for _, w := range payloadWidths {
		if s <= w {
			return prefixBits + w, nil
		}
	}
	return 0, fmt.Errorf("%w: ORDPATH component %d exceeds the largest bucket", labels.ErrOverflow, v)
}

// Code is one ORDPATH positional identifier: a component sequence of
// zero or more even "caret" values followed by a terminal odd value.
// Valid codes are prefix-free, so component-wise numeric comparison is a
// total order.
type Code struct {
	comps []int64
}

// NewCode validates the grammar and returns a code.
func NewCode(comps ...int64) (Code, error) {
	if len(comps) == 0 {
		return Code{}, fmt.Errorf("%w: empty ORDPATH code", labels.ErrBadCode)
	}
	for i, c := range comps[:len(comps)-1] {
		if c%2 != 0 {
			return Code{}, fmt.Errorf("%w: non-terminal component %d at %d must be even", labels.ErrBadCode, c, i)
		}
	}
	if comps[len(comps)-1]%2 == 0 {
		return Code{}, fmt.Errorf("%w: terminal component %d must be odd", labels.ErrBadCode, comps[len(comps)-1])
	}
	out := make([]int64, len(comps))
	copy(out, comps)
	return Code{comps: out}, nil
}

// Components returns a copy of the component values.
func (c Code) Components() []int64 {
	out := make([]int64, len(c.comps))
	copy(out, c.comps)
	return out
}

// String joins components with dots, as in the paper's Figure 4
// ("1.5.2.1" flattens the parent path and the careted identifier).
func (c Code) String() string {
	parts := make([]string, len(c.comps))
	for i, v := range c.comps {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ".")
}

// Bits implements labels.Code using the compressed component encoding.
func (c Code) Bits() int {
	total := 0
	for _, v := range c.comps {
		b, err := componentBits(v)
		if err != nil {
			// Component beyond the largest bucket: report the
			// worst-case bucket; Between/Assign reject such values.
			b = prefixBits + payloadWidths[len(payloadWidths)-1]
		}
		total += b
	}
	return total
}

// Algebra is the ORDPATH code algebra.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "ordpath" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra: sequential (non-recursive) initial
// labelling, midpoint divisions during careting, variable encoding,
// subject to overflow, not orthogonal (the careting grammar is tied to
// the prefix mounting).
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepVariable,
		DivisionFree:  false,
		RecursiveInit: false,
		OverflowFree:  false,
		Orthogonal:    false,
	}
}

// Assign implements labels.Algebra: odd integers 1, 3, 5, ...
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	if n <= 0 {
		return nil, nil
	}
	out := make([]labels.Code, n)
	for i := 0; i < n; i++ {
		out[i] = Code{comps: []int64{int64(2*i + 1)}}
	}
	return out, nil
}

// Between implements labels.Algebra: the careting-in insertion.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toCode(left)
	if err != nil {
		return nil, err
	}
	r, err := toCode(right)
	if err != nil {
		return nil, err
	}
	var m Code
	switch {
	case l.comps == nil && r.comps == nil:
		m = Code{comps: []int64{1}}
	case l.comps == nil:
		m = beforeCode(r)
	case r.comps == nil:
		m = afterCode(l)
	default:
		if a.Compare(l, r) >= 0 {
			return nil, fmt.Errorf("%w: %s not before %s", labels.ErrBadCode, l, r)
		}
		m = a.betweenCodes(l, r)
	}
	if err := checkBudget(m); err != nil {
		a.counters.OverflowHits++
		return nil, err
	}
	return m, nil
}

func checkBudget(c Code) error {
	total := 0
	for _, v := range c.comps {
		b, err := componentBits(v)
		if err != nil {
			return err
		}
		total += b
	}
	if total > MaxCodeBits {
		return fmt.Errorf("%w: ORDPATH code %s needs %d bits (budget %d)", labels.ErrOverflow, c, total, MaxCodeBits)
	}
	return nil
}

// beforeCode produces a code ordered before t: "a new node inserted to
// the left of all existing child nodes is labelled by adding -2 to the
// positional identifier of the left-most child node" (Figure 4's 1.1.-1).
func beforeCode(t Code) Code {
	v := t.comps[0]
	if v%2 != 0 {
		return Code{comps: []int64{v - 2}}
	}
	return Code{comps: []int64{v - 1}}
}

// afterCode produces a code ordered after t: "adding two to the
// positional identifier of the right-most child node" (Figure 4's 1.3.3).
func afterCode(t Code) Code {
	v := t.comps[0]
	if v%2 != 0 {
		return Code{comps: []int64{v + 2}}
	}
	return Code{comps: []int64{v + 1}}
}

// betweenCodes carets a new code strictly between l and r.
func (a *Algebra) betweenCodes(l, r Code) Code {
	i := 0
	for i < len(l.comps) && i < len(r.comps) && l.comps[i] == r.comps[i] {
		i++
	}
	// Valid codes are prefix-free, so both sides still have components.
	x, y := l.comps[i], r.comps[i]
	common := append([]int64{}, l.comps[:i]...)
	switch {
	case y-x > 1:
		a.counters.Divisions++
		mid := x + (y-x)/2
		if mid%2 != 0 {
			return Code{comps: append(common, mid)}
		}
		// Even midpoint: caret in and open a fresh odd level.
		return Code{comps: append(common, mid, 1)}
	case x%2 != 0:
		// x odd and y = x+1 even: l ends here, r continues; slide just
		// below r's continuation.
		tail := beforeCode(Code{comps: r.comps[i+1:]})
		return Code{comps: append(append(common, y), tail.comps...)}
	default:
		// x even: l continues; slide just above l's continuation.
		tail := afterCode(Code{comps: l.comps[i+1:]})
		return Code{comps: append(append(common, x), tail.comps...)}
	}
}

// Compare implements labels.Algebra: component-wise numeric order.
func (a *Algebra) Compare(p, q labels.Code) int {
	cp := p.(Code)
	cq := q.(Code)
	n := len(cp.comps)
	if len(cq.comps) < n {
		n = len(cq.comps)
	}
	for i := 0; i < n; i++ {
		switch {
		case cp.comps[i] < cq.comps[i]:
			return -1
		case cp.comps[i] > cq.comps[i]:
			return 1
		}
	}
	switch {
	case len(cp.comps) < len(cq.comps):
		return -1
	case len(cp.comps) > len(cq.comps):
		return 1
	default:
		return 0
	}
}

func toCode(c labels.Code) (Code, error) {
	if c == nil {
		return Code{}, nil
	}
	oc, ok := c.(Code)
	if !ok {
		return Code{}, fmt.Errorf("%w: %T is not an ORDPATH code", labels.ErrBadCode, c)
	}
	return oc, nil
}

// Level counts the odd components of a full ORDPATH label: "the level or
// depth of each node in the tree may be determined by counting the
// number of odd component values in the label" (§3.1.2). Exposed for the
// figure generator; the prefix labeling's Level uses path length.
func Level(path []labels.Code) int {
	level := 0
	for _, c := range path {
		for _, v := range c.(Code).comps {
			if v%2 != 0 {
				level++
			}
		}
	}
	return level - 1
}

// New returns an ORDPATH labeling.
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:    "ordpath",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh ORDPATH instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
