// Package cohen implements the first of the two prefix bit-code schemes
// of Cohen, Kaplan & Milo [4] as described in the paper's §3.1.2: "the
// positional identifier of the first child of node u is 0, of the
// second child is 10, of the third child is 110 and of the nth child is
// (n-1) ones with a 0 concatenated at the end. ... both approaches tend
// to have significant label sizes and consequently large storage costs
// and expensive comparative evaluation costs for even modest document
// sizes."
//
// The paper excludes the scheme from its matrix because it "does not
// support the maintenance of document order under updates": the code
// space admits appends but no order-preserving interior insertion, which
// this implementation reports as ErrNeedRelabel. It is registered as a
// measured-only row so the framework can show exactly which properties
// the exclusion costs.
package cohen

import (
	"fmt"
	"strings"

	"xmldyn/internal/labeling"
	"xmldyn/internal/labels"
	"xmldyn/internal/schemes/prefix"
)

// Code is a unary-length bit code: (n-1) ones followed by a zero.
type Code string

// String implements labels.Code.
func (c Code) String() string { return string(c) }

// Bits implements labels.Code: one bit per symbol.
func (c Code) Bits() int { return len(c) }

// Algebra is the Cohen bit-code algebra.
type Algebra struct {
	counters labels.Counters
}

// NewAlgebra returns a fresh algebra.
func NewAlgebra() *Algebra { return &Algebra{} }

// Name implements labels.Algebra.
func (a *Algebra) Name() string { return "cohen-bitcode" }

// Counters implements labels.Instrumented.
func (a *Algebra) Counters() *labels.Counters { return &a.counters }

// Traits implements labels.Algebra.
func (a *Algebra) Traits() labels.Traits {
	return labels.Traits{
		Encoding:      labels.RepVariable,
		DivisionFree:  true,
		RecursiveInit: false,
		OverflowFree:  false,
		Orthogonal:    false,
	}
}

// codeFor returns the identifier of the i-th child (0-based): i ones
// and a terminal zero.
func codeFor(i int) Code {
	return Code(strings.Repeat("1", i) + "0")
}

// Assign implements labels.Algebra: one-bit growth per sibling, the
// "significant label sizes" of §3.1.2 (the n-th code is n bits long).
func (a *Algebra) Assign(n int) ([]labels.Code, error) {
	a.counters.Assigns++
	if n <= 0 {
		return nil, nil
	}
	out := make([]labels.Code, n)
	for i := 0; i < n; i++ {
		out[i] = codeFor(i)
	}
	return out, nil
}

// Between implements labels.Algebra. Appending after the last code is
// the only order-preserving insertion: between "...10" and "...110"
// no code of the scheme's shape fits, so interior and before-first
// insertions require relabelling — the reason the paper excludes the
// scheme from its dynamic survey.
func (a *Algebra) Between(left, right labels.Code) (labels.Code, error) {
	a.counters.Betweens++
	l, err := toCode(left)
	if err != nil {
		return nil, err
	}
	r, err := toCode(right)
	if err != nil {
		return nil, err
	}
	switch {
	case l == "" && r == "":
		return codeFor(0), nil
	case r == "":
		// After last: one more leading 1 than the last code.
		return codeFor(len(l)), nil
	default:
		a.counters.RelabelErrors++
		return nil, fmt.Errorf("%w: cohen bit codes admit no insertion before %q", labels.ErrNeedRelabel, r)
	}
}

// Compare implements labels.Algebra: the code length (number of ones)
// is the sibling position; lexicographic comparison agrees because
// '0' < '1' makes a shorter code's terminal zero decide.
func (a *Algebra) Compare(x, y labels.Code) int {
	return strings.Compare(string(x.(Code)), string(y.(Code)))
}

func toCode(c labels.Code) (Code, error) {
	if c == nil {
		return "", nil
	}
	cc, ok := c.(Code)
	if !ok {
		return "", fmt.Errorf("%w: %T is not a cohen bit code", labels.ErrBadCode, c)
	}
	return cc, nil
}

// New returns a Cohen bit-code prefix labeling.
func New() labeling.Interface {
	return prefix.New(prefix.Config{
		Name:    "cohen",
		Algebra: NewAlgebra(),
	})
}

// Factory returns fresh instances.
func Factory() labeling.Factory {
	return func() labeling.Interface { return New() }
}
