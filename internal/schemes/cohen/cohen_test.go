package cohen

import (
	"errors"
	"testing"

	"xmldyn/internal/labels"
	"xmldyn/internal/update"
	"xmldyn/internal/xmltree"
)

// TestPaperCodes pins §3.1.2's worked identifiers: first child 0,
// second 10, third 110, nth (n-1) ones + 0.
func TestPaperCodes(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "10", "110", "1110"}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Errorf("code %d = %s, want %s", i, c, want[i])
		}
	}
	if i := labels.CheckAscending(cs, a.Compare); i != -1 {
		t.Fatalf("codes unsorted at %d", i)
	}
}

// TestOneBitGrowthRate quantifies "significant label sizes ... for even
// modest document sizes": the 100th sibling costs 100 bits where CDQS
// needs ~10.
func TestOneBitGrowthRate(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(100)
	if err != nil {
		t.Fatal(err)
	}
	if cs[99].Bits() != 100 {
		t.Errorf("100th code bits: %d", cs[99].Bits())
	}
	if total := labels.TotalBits(cs); total != 5050 {
		t.Errorf("total bits: %d", total)
	}
}

// TestNoInteriorInsertion: the exclusion reason — appends work, interior
// and before-first insertions require relabelling.
func TestNoInteriorInsertion(t *testing.T) {
	a := NewAlgebra()
	cs, err := a.Assign(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := a.Between(cs[2], nil)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if m.String() != "1110" {
		t.Errorf("append code: %s", m)
	}
	if _, err := a.Between(cs[0], cs[1]); !errors.Is(err, labels.ErrNeedRelabel) {
		t.Errorf("interior: %v", err)
	}
	if _, err := a.Between(nil, cs[0]); !errors.Is(err, labels.ErrNeedRelabel) {
		t.Errorf("before-first: %v", err)
	}
	if _, err := a.Between(labels.QString("2"), nil); !errors.Is(err, labels.ErrBadCode) {
		t.Errorf("foreign: %v", err)
	}
}

func TestSessionAppendsOnlyCheaply(t *testing.T) {
	doc := xmltree.ExampleTree()
	s, err := update.NewSession(doc, New())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendChild(doc.FindElement("c"), "tail"); err != nil {
		t.Fatal(err)
	}
	if st := s.Labeling().Stats(); st.Relabeled != 0 {
		t.Errorf("append relabelled %d", st.Relabeled)
	}
	// Front insertion relabels the whole sibling list.
	if _, err := s.InsertFirstChild(doc.FindElement("c"), "front"); err != nil {
		t.Fatal(err)
	}
	if st := s.Labeling().Stats(); st.Relabeled == 0 {
		t.Error("front insert did not relabel")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
