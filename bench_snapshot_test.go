package xmldyn

// BenchmarkSnapshotRead: MVCC snapshot reads vs RWMutex-held reads
// under background writer load — the microbenchmark twin of the C13
// experiment (internal/experiments/snapshots.go), tracked in
// BENCH_repo.json by scripts/bench_repo.sh. One benchmark op is a
// fixed read workload — 100 read transactions of eight queries each
// over two shared documents — so an op spans many scheduler quanta
// and its cost is stable from the first timing round even while the
// writers saturate the machine (per-transaction ops would let the
// framework mis-extrapolate b.N from an unsaturated first round).
// The contended rows are meant to run under FIXED-WORK timing: the
// bench script invokes them with -benchtime=4x, so every row performs
// the identical amount of work (4 ops x 100 txns x 8 queries) instead
// of whatever iteration count the framework extrapolates — the
// one-vs-two-iteration jitter that used to make the BENCH_repo.json
// deltas untrustworthy is gone by construction. Each row also reports
// a queries/s metric so rows compare directly whatever the iteration
// count. The mvcc mode pins one Snapshot per transaction and queries
// it with no lock held; the rwmutex mode holds the document read lock
// for every query and waits out the writer queue. Compare modes by
// queries/s: same workload, same writer storm.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// sawtoothCommit is the benchmark writers' transaction: batches of 8
// appends at the tail until the document reaches ~48 children, then
// batches of 8 deletes of that same tail back down to ~16. Deleting
// exactly the nodes the append phase created keeps the label space at
// a fixed point — the algebra regenerates the identical labels each
// cycle — where an append-at-tail/delete-at-front "steady state"
// marches the label interval rightward forever and QED label lengths
// (and so writer lock-hold times) grow without bound, which is the
// paper's append-only degradation, not a benchmarkable steady state.
func sawtoothCommit(s *Session) error {
	root := s.Document().Root()
	kids := root.Children()
	bt := s.Batch()
	if len(kids) > 48 {
		for i := 0; i < 8; i++ {
			bt.Delete(kids[len(kids)-1-i])
		}
	} else {
		for i := 0; i < 8; i++ {
			bt.AppendChild(root, "item")
		}
	}
	_, err := bt.Commit()
	return err
}

// BenchmarkSnapshotRead measures the fixed read workload's duration
// for both read paths at 1, 4 and 16 continuously committing writers.
func BenchmarkSnapshotRead(b *testing.B) {
	const (
		group = 8   // queries per read transaction
		txns  = 100 // read transactions per benchmark op
	)
	names := []string{"a", "b"}
	for _, writers := range []int{1, 4, 16} {
		for _, mode := range []string{"mvcc", "rwmutex"} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode, writers), func(b *testing.B) {
				r := NewRepository(RepoOptions{})
				for _, name := range names {
					doc, err := ParseString("<r><seed/></r>")
					if err != nil {
						b.Fatal(err)
					}
					if _, err := r.Open(name, doc, "qed"); err != nil {
						b.Fatal(err)
					}
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				var commits atomic.Int64
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						name := names[w%len(names)]
						for {
							select {
							case <-stop:
								return
							default:
							}
							d, _ := r.Get(name)
							if err := d.Update(sawtoothCommit); err != nil {
								b.Error(err)
								return
							}
							commits.Add(1)
						}
					}(w)
				}
				// Wait until every writer has demonstrably committed:
				// on a single-CPU box the freshly created goroutines do
				// not run until the creator yields, and measuring even
				// one timing round against an idle writer set makes the
				// framework extrapolate b.N from uncontended reads.
				for commits.Load() < int64(writers) {
					runtime.Gosched()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for tx := 0; tx < txns; tx++ {
						if mode == "mvcc" {
							snap, err := r.Snapshot(names...)
							if err != nil {
								b.Fatal(err)
							}
							for q := 0; q < group; q++ {
								if _, err := snap.Query(names[q%len(names)], "//item"); err != nil {
									snap.Close()
									b.Fatal(err)
								}
							}
							snap.Close()
							continue
						}
						for q := 0; q < group; q++ {
							err := r.QueryFunc(names[q%len(names)], "//item", func([]*Node) error { return nil })
							if err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				b.StopTimer()
				queries := float64(b.N) * txns * group
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(queries/secs, "queries/s")
				}
				close(stop)
				wg.Wait()
			})
		}
	}
}

// BenchmarkSnapshotPin isolates the cost of taking and closing a
// snapshot itself — the price of entry to the lock-free read path —
// with no writer interference: the cached-version case (pin only) and
// the superseded case (a write between pins, so each pin picks up a
// freshly published version). The superseded rows keep the historical
// materialise-N-nodes names so BENCH_repo.json rows stay comparable
// across PRs, but nothing materialises any more: the row used to
// deep-copy all N nodes inside the pin (~1100 allocs at N=64); with
// persistent path-copying versions the commit publishes an O(spine)
// delta and the pin is O(1), so the superseding write sits OUTSIDE
// the timed region (StopTimer/StartTimer) and the 64- and 1024-node
// rows should report the same handful of allocs/op. Run with a fixed
// iteration count (the bench script uses -benchtime=200x): with the
// write excluded, extrapolating b.N from pin time alone would make
// wall-clock time explode.
func BenchmarkSnapshotPin(b *testing.B) {
	setup := func(b *testing.B, nodes int) *Repository {
		r := NewRepository(RepoOptions{})
		doc, err := ParseString("<r><seed/></r>")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Open("a", doc, "qed"); err != nil {
			b.Fatal(err)
		}
		d, _ := r.Get("a")
		err = d.Update(func(s *Session) error {
			bt := s.Batch()
			for i := 0; i < nodes-1; i++ {
				bt.AppendChild(s.Document().Root(), "item")
			}
			_, err := bt.Commit()
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	b.Run("cached", func(b *testing.B) {
		r := setup(b, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap, err := r.Snapshot("a")
			if err != nil {
				b.Fatal(err)
			}
			snap.Close()
		}
	})
	for _, nodes := range []int{64, 1024} {
		b.Run(fmt.Sprintf("materialise-%d-nodes", nodes), func(b *testing.B) {
			r := setup(b, nodes)
			d, _ := r.Get("a")
			write := func() {
				err := d.Update(func(s *Session) error {
					root := s.Document().Root()
					if _, err := s.AppendChild(root, "x"); err != nil {
						return err
					}
					return s.Delete(root.LastChild())
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// Activate versioning and warm the publication path before
			// the timer starts.
			snap, err := r.Snapshot("a")
			if err != nil {
				b.Fatal(err)
			}
			snap.Close()
			write()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				write() // supersede the pinned version, outside the timed region
				b.StartTimer()
				snap, err := r.Snapshot("a")
				if err != nil {
					b.Fatal(err)
				}
				snap.Close()
			}
		})
	}
}
