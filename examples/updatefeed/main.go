// Updatefeed demonstrates the textual update language over a persistent
// scheme: a stream of XQuery-Update-Facility-style scripts (the W3C
// machinery the paper's introduction motivates) applied to a catalogue,
// with the labelling scheme maintaining document order underneath and a
// binary snapshot saved after every batch.
package main

import (
	"fmt"
	"log"

	"xmldyn"
)

var batches = []string{
	`insert node <entry id="1"><title>First</title></entry> into /catalog`,
	`insert node <entry id="2"><title>Second</title></entry> into /catalog;
	 insert node <entry id="0"><title>Zeroth</title></entry> as first into /catalog`,
	`replace value of node /catalog/entry[@id='1']/title with "First, revised";
	 rename node /catalog/entry[@id='2'] as article`,
	`move node /catalog/article before /catalog/entry[@id='0'];
	 delete node /catalog/entry[@id='1']`,
}

func main() {
	doc, err := xmldyn.ParseString(`<catalog/>`)
	if err != nil {
		log.Fatal(err)
	}
	s, err := xmldyn.Open(doc, "cdqs")
	if err != nil {
		log.Fatal(err)
	}
	var lastSnapshot []byte
	for i, script := range batches {
		res, err := xmldyn.ApplyUpdates(s, script)
		if err != nil {
			log.Fatalf("batch %d: %v", i+1, err)
		}
		if err := xmldyn.VerifyOrder(s); err != nil {
			log.Fatalf("batch %d broke document order: %v", i+1, err)
		}
		snap, err := xmldyn.Save(s)
		if err != nil {
			log.Fatal(err)
		}
		lastSnapshot = snap
		fmt.Printf("batch %d: +%d -%d ~%d moved %d | %d bytes snapshot | %s\n",
			i+1, res.Inserted, res.Deleted, res.Replaced+res.Renamed, res.Moved,
			len(snap), doc.XML())
	}
	st := s.Labeling().Stats()
	fmt.Printf("\nscheme %s relabelled %d nodes across all batches\n", s.Labeling().Name(), st.Relabeled)

	// Cold start from the last snapshot: same document, live session.
	re, err := xmldyn.Restore(lastSnapshot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored from snapshot: %s\n", re.Document().XML())
	if re.Document().XML() != doc.XML() {
		log.Fatal("snapshot round trip mismatch")
	}
}
