// Replica demonstrates WAL-shipping read replicas: a durable leader
// repository with a Shipper serving on a real TCP listener, and
// followers that bootstrap, tail the log live, and serve lock-free
// MVCC snapshot reads with an explicit staleness bound. The demo
// attaches one follower before a commit burst (it tails live and its
// Lag drains to 0), reads the same snapshot state from both sides,
// then checkpoints the leader and cold-attaches a second follower —
// which bootstraps from the checkpoint instead of replaying history —
// and finally prints the shipper's per-session accounting.
// docs/REPLICATION.md specifies the protocol this walks over;
// docs/OPERATIONS.md §10 is the staleness triage guide.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"xmldyn"
)

// tmpDir makes a throwaway state directory, registering cleanup.
func tmpDir(prefix string, cleanups *[]func()) string {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		log.Fatal(err)
	}
	*cleanups = append(*cleanups, func() { os.RemoveAll(dir) })
	return dir
}

// awaitCaughtUp polls until the follower's position reaches the
// leader's durable end with Lag 0, printing the lag it saw on the way
// — the staleness bound an operator would watch.
func awaitCaughtUp(label string, leader *xmldyn.DurableRepository, f *xmldyn.Follower) {
	deadline := time.Now().Add(30 * time.Second)
	var peak uint64
	for {
		if l := f.Lag(); l > peak {
			peak = l
		}
		end, ok := leader.EndPosition()
		if ok && f.Position() == end && f.Lag() == 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("%s: follower stuck at lag %d", label, f.Lag())
		}
		time.Sleep(200 * time.Microsecond)
	}
	fmt.Printf("%s: caught up at %v (peak observed lag %d bytes, applied stamp %d)\n",
		label, f.Position(), peak, f.AppliedStamp())
}

func main() {
	commits := flag.Int("commits", 200, "batches to commit while the live follower tails")
	flag.Parse()
	var cleanups []func()
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()

	// Leader: a durable repository plus a shipper on a real listener.
	leader, err := xmldyn.NewDurableRepository(tmpDir("xmldyn-replica-leader-", &cleanups),
		xmldyn.DurableOptions{Sync: xmldyn.SyncGrouped, AutoCheckpointBytes: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer leader.Close()
	doc, err := xmldyn.ParseString(`<feed><entry seq="0"/></feed>`)
	if err != nil {
		log.Fatal(err)
	}
	if err := leader.Open("feed", doc, "qed"); err != nil {
		log.Fatal(err)
	}
	shipper := xmldyn.NewShipper(leader, xmldyn.ShipperOptions{Heartbeat: 2 * time.Millisecond})
	defer shipper.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = shipper.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Printf("leader shipping WAL on %s\n", addr)
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }

	// Live follower: attaches before the burst, tails record by record.
	live, err := xmldyn.OpenFollower(tmpDir("xmldyn-replica-live-", &cleanups),
		xmldyn.FollowerOptions{Store: xmldyn.DurableOptions{Sync: xmldyn.SyncGrouped}, Dial: dial, AckEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	go func() { _ = live.Run() }()
	awaitCaughtUp("live follower (initial sync)", leader, live)

	// Commit burst while the follower tails.
	start := time.Now()
	for i := 1; i <= *commits; i++ {
		_, err := leader.Batch("feed", func(doc *xmldyn.Document, b *xmldyn.Batch) error {
			root := doc.Root()
			b.InsertAfter(root.LastChild(), "entry")
			b.SetAttr(root, "entries", fmt.Sprintf("%d", i+1))
			return nil
		})
		if err != nil {
			log.Fatalf("commit %d: %v", i, err)
		}
	}
	fmt.Printf("committed %d batches in %v\n", *commits, time.Since(start).Round(time.Millisecond))
	awaitCaughtUp("live follower (post-burst)", leader, live)

	// Reads are lock-free MVCC snapshots on both sides; a caught-up
	// follower serves byte-for-byte the leader's committed state.
	lsnap, err := leader.Snapshot("feed")
	if err != nil {
		log.Fatal(err)
	}
	defer lsnap.Close()
	fsnap, err := live.Snapshot("feed")
	if err != nil {
		log.Fatal(err)
	}
	defer fsnap.Close()
	ldoc, err := lsnap.Document("feed")
	if err != nil {
		log.Fatal(err)
	}
	fdoc, err := fsnap.Document("feed")
	if err != nil {
		log.Fatal(err)
	}
	if ldoc.XML() != fdoc.XML() {
		log.Fatal("follower snapshot diverged from leader")
	}
	fmt.Printf("snapshot reads agree: %d entries on both sides\n", len(fdoc.Root().Children()))

	// Checkpoint, then cold-attach a second follower: it is too far
	// behind to resume (the checkpoint retired the history), so the
	// shipper bootstraps it from the snapshot files instead.
	if err := leader.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	cold, err := xmldyn.OpenFollower(tmpDir("xmldyn-replica-cold-", &cleanups),
		xmldyn.FollowerOptions{Store: xmldyn.DurableOptions{Sync: xmldyn.SyncGrouped}, Dial: dial, AckEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cold.Close()
	go func() { _ = cold.Run() }()
	awaitCaughtUp("cold follower (checkpoint bootstrap)", leader, cold)

	for i, s := range shipper.Sessions() {
		fmt.Printf("session %d: sent %v, acked %v, bootstrapped=%v\n", i, s.Sent, s.Acked, s.Bootstrapped)
	}
}
