// Versionstore demonstrates the paper's §5.2 selection guidance: "a
// repository that may want to record document history and enable
// version control would select a labelling scheme supporting persistent
// labels."
//
// The example builds a tiny change-log store that records every edit
// keyed by node label. Under a persistent scheme (QED) the log remains
// valid across arbitrary later edits — a label recorded at version 1
// still identifies the same node at version N. Under DeweyID the same
// workflow breaks: front insertions shift labels, and the change log
// silently points at the wrong nodes.
package main

import (
	"fmt"
	"log"

	"xmldyn"
)

// entry is one change-log record: "at version v, the node labelled l
// got text t".
type entry struct {
	version int
	label   string
	text    string
}

func main() {
	fmt.Println("== version store on a persistent scheme (qed) ==")
	run("qed")
	fmt.Println()
	fmt.Println("== the same workflow on DeweyID (not persistent) ==")
	run("deweyid")
}

func run(scheme string) {
	doc, err := xmldyn.ParseString(
		`<report><section>alpha</section><section>beta</section><section>gamma</section></report>`)
	if err != nil {
		log.Fatal(err)
	}
	s, err := xmldyn.Open(doc, scheme)
	if err != nil {
		log.Fatal(err)
	}

	// Version 1: record the label of every section with its text.
	var journal []entry
	for _, sec := range doc.Root().Children() {
		journal = append(journal, entry{1, s.Labeling().Label(sec).String(), sec.Text()})
	}

	// Versions 2..4: edits that stress label stability — every new
	// section lands at the front.
	for v := 2; v <= 4; v++ {
		n, err := s.InsertFirstChild(doc.Root(), "section")
		if err != nil {
			log.Fatal(err)
		}
		if err := s.SetText(n, fmt.Sprintf("added in v%d", v)); err != nil {
			log.Fatal(err)
		}
		journal = append(journal, entry{v, s.Labeling().Label(n).String(), n.Text()})
	}

	// Replay: does each journal label still identify the node whose
	// text it recorded?
	current := make(map[string]string)
	doc.WalkLabelled(func(n *xmldyn.Node) bool {
		current[s.Labeling().Label(n).String()] = n.Text()
		return true
	})
	stale := 0
	for _, e := range journal {
		got, ok := current[e.label]
		status := "ok"
		if !ok || got != e.text {
			status = fmt.Sprintf("STALE (now %q)", got)
			stale++
		}
		fmt.Printf("  v%d %-14s recorded %-14q %s\n", e.version, e.label, e.text, status)
	}
	st := s.Labeling().Stats()
	fmt.Printf("  -> %d of %d journal entries stale; scheme relabelled %d nodes\n",
		stale, len(journal), st.Relabeled)
}
