// Quickstart: parse a document, label it with a dynamic scheme, apply
// structural updates without relabelling, evaluate XPath axes from the
// labels alone, and round-trip the Definition 2 encoding table.
package main

import (
	"fmt"
	"log"
	"os"

	"xmldyn"
)

func main() {
	// The paper's Figure 1(a) sample document.
	doc := xmldyn.SampleBook()

	// Label it with QED: the quaternary scheme of §4 that never
	// relabels existing nodes.
	s, err := xmldyn.Open(doc, "qed")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== labels after initial bulk load ==")
	printLabels(s)

	// Structural updates: a new element between author and publisher,
	// a subtree, and an attribute.
	author := doc.FindElement("author")
	translator, err := s.InsertAfter(author, "translator")
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SetText(translator, "J. Doe"); err != nil {
		log.Fatal(err)
	}
	chapter := xmldyn.NewElement("chapter")
	if err := chapter.AppendChild(xmldyn.NewText("Once upon a time...")); err != nil {
		log.Fatal(err)
	}
	if err := s.AppendSubtree(doc.Root(), chapter); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== after updates: existing labels unchanged, order maintained ==")
	printLabels(s)
	st := s.Labeling().Stats()
	fmt.Printf("relabelled nodes: %d (QED's §4 guarantee)\n", st.Relabeled)
	if err := xmldyn.VerifyOrder(s); err != nil {
		log.Fatal(err)
	}

	// XPath from labels alone: which nodes are descendants of
	// publisher, decided purely by label comparison.
	eng := xmldyn.LabelQuery(s)
	publisher := doc.FindElement("publisher")
	desc, err := eng.Select(publisher, xmldyn.AxisDescendant, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== descendants of publisher, from labels alone ==")
	for _, n := range desc {
		fmt.Printf("  %s (%s)\n", s.Labeling().Label(n), n.Name())
	}

	// Location-path queries.
	hits, err := xmldyn.Query(s, "/book/publisher//name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/book/publisher//name -> %s = %q\n", hits[0].Name(), hits[0].Text())

	// The encoding scheme (Definition 2): table out, document back.
	fmt.Println("\n== encoding table (Figure 2 style) ==")
	enc := xmldyn.Encode(s)
	if err := enc.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	re, err := xmldyn.Reconstruct(enc.Table())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstruction identical: %v\n", re.XML() == doc.XML())
}

func printLabels(s *xmldyn.Session) {
	doc := s.Document()
	doc.WalkLabelled(func(n *xmldyn.Node) bool {
		fmt.Printf("  %-12s %s\n", s.Labeling().Label(n), n.Name())
		return true
	})
}
