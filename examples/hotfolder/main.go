// Hotfolder demonstrates the paper's second §5.2 selection scenario: "an
// XML repository that is expected to consume very large documents on a
// regular basis may consider a labelling scheme that is not subject to
// the overflow problem."
//
// A news feed keeps inserting items at the top of a channel (the skewed
// scenario of §5.1). The example races four schemes through the same
// feed and reports label growth, relabelling and overflow events — the
// numbers behind choosing QED/CDQS (or vectors, within their coordinate
// ceiling) for feed-like repositories.
package main

import (
	"fmt"
	"log"

	"xmldyn"
)

const items = 600

func main() {
	fmt.Printf("feed simulation: %d items inserted at the top of the channel\n\n", items)
	fmt.Printf("%-16s %14s %12s %12s %14s\n", "scheme", "newest label", "relabelled", "overflows", "mean bits")
	for _, scheme := range []string{"qed", "cdqs", "vector-prefix", "cdbs", "deweyid"} {
		run(scheme)
	}
	fmt.Println("\nreading: QED/CDQS absorb every insertion but labels at the hot spot grow linearly;")
	fmt.Println("vector labels stay byte-sized (log growth); CDBS overflows its length field and")
	fmt.Println("relabels; DeweyID relabels the whole channel on every insertion (§3.1.2, §4).")
}

func run(scheme string) {
	doc, err := xmldyn.ParseString(`<channel><item>seed</item></channel>`)
	if err != nil {
		log.Fatal(err)
	}
	s, err := xmldyn.Open(doc, scheme)
	if err != nil {
		log.Fatal(err)
	}
	channel := doc.Root()
	var newest *xmldyn.Node
	for i := 0; i < items; i++ {
		n, err := s.InsertFirstChild(channel, "item")
		if err != nil {
			// A hard overflow is a finding, not a crash: report it.
			fmt.Printf("%-16s %14s %12s %12s %14s\n", scheme, "-", "-", fmt.Sprintf("hard@%d", i), "-")
			return
		}
		newest = n
	}
	st := s.Labeling().Stats()
	label := s.Labeling().Label(newest).String()
	if len(label) > 14 {
		label = label[:11] + "..."
	}
	fmt.Printf("%-16s %14s %12d %12d %14.1f\n",
		scheme, label, st.Relabeled, st.OverflowEvents, xmldyn.MeanLabelBits(s))
	if err := xmldyn.VerifyOrder(s); err != nil {
		log.Fatalf("%s lost document order: %v", scheme, err)
	}
}
