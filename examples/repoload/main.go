// Repoload demonstrates the concurrent repository layer under mixed
// traffic: a repository of scheme-diverse documents served to N
// goroutines of readers (XPath queries, order verifications) and
// writers (batched insert/delete transactions), followed by a whole-
// repository save/restore round trip. Every writer commit re-verifies
// document order — once per batch, however many ops the batch carries —
// so the repository never publishes an order-violating document.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"xmldyn"
)

// Workload shape, adjustable from the command line (see README.md).
var (
	writers      = flag.Int("writers", 6, "concurrent writer goroutines")
	readers      = flag.Int("readers", 12, "concurrent reader goroutines")
	opsPerWriter = flag.Int("ops", 30, "commits per writer (and reads per reader)")
	batchSize    = flag.Int("batch", 8, "ops per batched transaction")
)

// A scheme-diverse catalogue: every document lives under a different
// labelling scheme, exercising the repository's scheme independence.
var catalogue = []struct {
	name   string
	scheme string
	seed   int64
}{
	{"books", "qed", 1},
	{"articles", "deweyid", 2},
	{"feeds", "ordpath", 3},
	{"logs", "cdqs", 4},
	{"notes", "vector", 5},
}

func main() {
	flag.Parse()
	// Writer names drive the reader queries; with no writers the
	// readers query a name no writer uses (and never divide by zero).
	wmod := *writers
	if wmod < 1 {
		wmod = 1
	}
	r := xmldyn.NewRepository(xmldyn.RepoOptions{Shards: 4})
	for _, c := range catalogue {
		doc, err := xmldyn.ParseString("<root/>")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := r.Open(c.name, doc, c.scheme); err != nil {
			log.Fatal(err)
		}
		// Seed each document with some content in one batch.
		d, _ := r.Get(c.name)
		err = d.Update(func(s *xmldyn.Session) error {
			b := s.Batch()
			for i := 0; i < 20; i++ {
				b.AppendChild(s.Document().Root(), fmt.Sprintf("item%d", i%4))
			}
			_, err := b.Commit()
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	var (
		wg             sync.WaitGroup
		queries, hits  int64
		commits, batch int64
	)

	// Writers: batched mixed insert/delete transactions, serialized
	// per document, parallel across documents.
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := catalogue[w%len(catalogue)].name
			for i := 0; i < *opsPerWriter; i++ {
				err := r.Update(name, func(s *xmldyn.Session) error {
					root := s.Document().Root()
					b := s.Batch()
					for j := 0; j < *batchSize; j++ {
						b.AppendChild(root, fmt.Sprintf("w%d", w))
					}
					if kids := root.Children(); len(kids) > 60 {
						b.Delete(kids[0])
					}
					n, err := b.Commit()
					if err == nil {
						for _, created := range n.New {
							if created != nil {
								atomic.AddInt64(&batch, 1)
							}
						}
					}
					return err
				})
				if err != nil {
					log.Fatalf("writer %d: %v", w, err)
				}
				atomic.AddInt64(&commits, 1)
			}
		}(w)
	}

	// Readers: queries and order verifications, any number in
	// parallel per document.
	for g := 0; g < *readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := catalogue[g%len(catalogue)].name
			for i := 0; i < *opsPerWriter; i++ {
				if i%4 == 0 {
					d, _ := r.Get(name)
					if err := d.Verify(); err != nil {
						log.Fatalf("reader %d: order violated: %v", g, err)
					}
					continue
				}
				// Zero-copy query: the live nodes are only touched
				// inside the read lock.
				err := r.QueryFunc(name, fmt.Sprintf("//w%d", g%wmod), func(nodes []*xmldyn.Node) error {
					atomic.AddInt64(&hits, int64(len(nodes)))
					return nil
				})
				if err != nil {
					log.Fatalf("reader %d: %v", g, err)
				}
				atomic.AddInt64(&queries, 1)
			}
		}(g)
	}

	wg.Wait()

	fmt.Printf("repository: %d documents %v\n", r.Len(), r.Names())
	fmt.Printf("writers:    %d batch commits, %d nodes inserted\n", commits, batch)
	fmt.Printf("readers:    %d queries, %d nodes matched\n", queries, hits)
	for _, c := range catalogue {
		d, _ := r.Get(c.name)
		ctr := d.Counters()
		fmt.Printf("  %-9s %-8s batches=%-4d verifies=%-4d inserts=%-5d deletes=%d\n",
			c.name, c.scheme, ctr.Batches, ctr.Verifies, ctr.Inserts, ctr.Deletes)
	}

	// The whole repository round-trips through one container.
	blob, err := xmldyn.SaveRepository(r)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := xmldyn.RestoreRepository(blob, xmldyn.RepoOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("save/restore: %d bytes, %d documents restored, all verified: ", len(blob), r2.Len())
	for _, name := range r2.Names() {
		d, _ := r2.Get(name)
		if err := d.Verify(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	fmt.Println("yes")
}
