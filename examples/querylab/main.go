// Querylab demonstrates the paper's XPath-Evaluations property (§5.1):
// which axes each labelling scheme can answer *from the node label
// alone*, and that the answers agree with structural ground truth.
//
// Prefix schemes (Full grade) decide ancestor/descendant, parent/child
// and sibling axes from labels; containment schemes with level decide
// parent but not sibling (Partial); QRS and Sector decide only
// containment (Partial, no level).
package main

import (
	"errors"
	"fmt"
	"log"

	"xmldyn"
)

func main() {
	axes := []struct {
		name string
		axis xmldyn.Axis
	}{
		{"descendant", xmldyn.AxisDescendant},
		{"ancestor", xmldyn.AxisAncestor},
		{"child", xmldyn.AxisChild},
		{"parent", xmldyn.AxisParent},
		{"following-sibling", xmldyn.AxisFollowingSibling},
		{"following", xmldyn.AxisFollowing},
	}
	schemes := []string{"qed", "deweyid", "xpath-accelerator", "qrs"}

	fmt.Printf("%-20s", "axis \\ scheme")
	for _, s := range schemes {
		fmt.Printf("  %-18s", s)
	}
	fmt.Println()
	for _, ax := range axes {
		fmt.Printf("%-20s", ax.name)
		for _, scheme := range schemes {
			fmt.Printf("  %-18s", evalAxis(scheme, ax.axis))
		}
		fmt.Println()
	}
	fmt.Println("\n(cell = result of evaluating the axis at <editor> from labels alone;")
	fmt.Println(" 'unsupported' cells are the paper's Partial XPath grades made visible)")
}

func evalAxis(scheme string, axis xmldyn.Axis) string {
	doc := xmldyn.SampleBook()
	s, err := xmldyn.Open(doc, scheme)
	if err != nil {
		log.Fatal(err)
	}
	editor := doc.FindElement("editor")
	eng := xmldyn.LabelQuery(s)
	nodes, err := eng.Select(editor, axis, "")
	if err != nil {
		if errors.Is(err, xmldyn.ErrAxisUnsupported) {
			return "unsupported"
		}
		log.Fatal(err)
	}
	if len(nodes) == 0 {
		return "(empty)"
	}
	names := ""
	for i, n := range nodes {
		if i > 0 {
			names += ","
		}
		names += n.Name()
	}
	if len(names) > 18 {
		names = names[:15] + "..."
	}
	return names
}
