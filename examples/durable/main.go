// Durable demonstrates the crash-safe repository layer: a directory-
// backed repository whose commits are write-ahead logged (fsync per
// commit here), surviving an abrupt process death. The demo commits
// batches, "crashes" by abandoning the repository without Close, and
// reopens the directory: recovery replays snapshot + log back to the
// exact committed state, verifying document order as it goes. A
// checkpoint then folds the log into a fresh snapshot and the cycle
// repeats on the truncated log. docs/DURABILITY.md specifies the
// on-disk format this walks over.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"xmldyn"
)

func main() {
	dir := flag.String("dir", "", "repository directory (default: a temp dir, removed at exit)")
	commits := flag.Int("commits", 25, "batches to commit before the simulated crash")
	flag.Parse()
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "xmldyn-durable-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}

	// Phase 1: open, commit, crash (no Close, no Checkpoint).
	r, err := xmldyn.NewDurableRepository(*dir, xmldyn.DurableOptions{Sync: xmldyn.SyncPerCommit})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xmldyn.ParseString(`<ledger><entry seq="0"/></ledger>`)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Open("ledger", doc, "qed"); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= *commits; i++ {
		_, err := r.Batch("ledger", func(doc *xmldyn.Document, b *xmldyn.Batch) error {
			root := doc.Root()
			last := root.LastChild()
			b.InsertAfter(last, "entry")
			b.SetAttr(root, "entries", fmt.Sprintf("%d", i+1))
			return nil
		})
		if err != nil {
			log.Fatalf("commit %d: %v", i, err)
		}
	}
	fmt.Printf("committed %d batches to %s (log: %d bytes, generation %d)\n",
		*commits, *dir, r.LogSize(), r.Generation())
	fmt.Println("simulating crash: abandoning the repository without Close")

	// Phase 2: recover. Every committed batch must be back, in order.
	recovered, err := xmldyn.NewDurableRepository(*dir, xmldyn.DurableOptions{Sync: xmldyn.SyncPerCommit})
	if err != nil {
		log.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	if err := recovered.Verify("ledger"); err != nil {
		log.Fatalf("recovered order: %v", err)
	}
	var entries int
	err = recovered.View("ledger", func(s *xmldyn.Session) error {
		entries = len(s.Document().Root().Children())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d entries (want %d), order verified\n", entries, *commits+1)

	// Phase 3: checkpoint folds the log into a snapshot.
	before := recovered.LogSize()
	if err := recovered.Checkpoint(); err != nil {
		log.Fatalf("checkpoint: %v", err)
	}
	fmt.Printf("checkpoint: generation %d, log %d -> %d bytes\n",
		recovered.Generation(), before, recovered.LogSize())

	// Post-checkpoint commits land in the fresh log.
	if _, err := recovered.Batch("ledger", func(doc *xmldyn.Document, b *xmldyn.Batch) error {
		b.AppendChild(doc.Root(), "post-checkpoint")
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-checkpoint commit appended; log now %d bytes\n", recovered.LogSize())
}
