// Durable demonstrates the crash-safe repository layer: a directory-
// backed repository whose commits are write-ahead logged (fsync per
// commit here), surviving an abrupt process death. The demo commits
// batches across several small WAL segments (an artificially tiny
// rotation threshold so segmentation is visible), "crashes" by
// abandoning the repository without Close, and reopens the directory:
// recovery replays snapshot + segments back to the exact committed
// state, verifying document order as it goes. A checkpoint then folds
// the log into a fresh snapshot, retiring the dead segments, and the
// cycle repeats on the fresh one. The directory listing is printed at
// each stage — README.md annotates what you will see.
// docs/DURABILITY.md specifies the on-disk format this walks over.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"xmldyn"
)

// listDir prints the repository directory's files with sizes, sorted,
// so each stage's on-disk shape (manifest, snapshot, wal segments) is
// visible.
func listDir(dir, label string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	fmt.Printf("on disk (%s):\n", label)
	for _, name := range names {
		info, err := os.Stat(dir + string(os.PathSeparator) + name)
		if err != nil {
			continue
		}
		kind := ""
		switch {
		case name == "MANIFEST":
			kind = "generation pointer"
		case strings.HasPrefix(name, "snapshot-"):
			kind = "checkpoint snapshot"
		case strings.HasPrefix(name, "wal-"):
			kind = "wal segment"
		}
		fmt.Printf("  %-22s %7d bytes  %s\n", name, info.Size(), kind)
	}
}

func main() {
	dir := flag.String("dir", "", "repository directory (default: a temp dir, removed at exit)")
	commits := flag.Int("commits", 25, "batches to commit before the simulated crash")
	segBytes := flag.Int64("segment-bytes", 512, "WAL segment rotation threshold (tiny, to make segments visible)")
	flag.Parse()
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "xmldyn-durable-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	// Auto-checkpoint is disabled here so the demo's manual Checkpoint
	// is the only compaction and the segment files stay put for the
	// crash; production code would usually leave the default threshold.
	opts := xmldyn.DurableOptions{Sync: xmldyn.SyncPerCommit, SegmentBytes: *segBytes, AutoCheckpointBytes: -1}

	// Phase 1: open, commit, crash (no Close, no Checkpoint).
	r, err := xmldyn.NewDurableRepository(*dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xmldyn.ParseString(`<ledger><entry seq="0"/></ledger>`)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Open("ledger", doc, "qed"); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= *commits; i++ {
		_, err := r.Batch("ledger", func(doc *xmldyn.Document, b *xmldyn.Batch) error {
			root := doc.Root()
			last := root.LastChild()
			b.InsertAfter(last, "entry")
			b.SetAttr(root, "entries", fmt.Sprintf("%d", i+1))
			return nil
		})
		if err != nil {
			log.Fatalf("commit %d: %v", i, err)
		}
	}
	// The ok results guard against reading a closed repository's zeros
	// as "empty log"; this handle is open, so they are true here.
	first, active, _ := r.SegmentRange()
	live, _ := r.LogSize()
	fmt.Printf("committed %d batches to %s\n", *commits, *dir)
	fmt.Printf("live log: %d bytes across segments [%d..%d], generation %d\n",
		live, first, active, r.Generation())
	listDir(*dir, "before crash")
	fmt.Println("simulating crash: abandoning the repository without Close")

	// Phase 2: recover. Every committed batch must be back, in order,
	// replayed across all the segments the crash left behind.
	recovered, err := xmldyn.NewDurableRepository(*dir, opts)
	if err != nil {
		log.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	if err := recovered.Verify("ledger"); err != nil {
		log.Fatalf("recovered order: %v", err)
	}
	var entries int
	err = recovered.View("ledger", func(s *xmldyn.Session) error {
		entries = len(s.Document().Root().Children())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d entries (want %d), order verified\n", entries, *commits+1)

	// Phase 3: checkpoint folds the log into a snapshot and retires the
	// dead segments — this is what the auto-checkpointer does in the
	// background once live bytes pass AutoCheckpointBytes.
	before, _ := recovered.LogSize()
	if err := recovered.Checkpoint(); err != nil {
		log.Fatalf("checkpoint: %v", err)
	}
	f2, a2, _ := recovered.SegmentRange()
	after, _ := recovered.LogSize()
	fmt.Printf("checkpoint: generation %d, log %d -> %d bytes, live segments now [%d..%d]\n",
		recovered.Generation(), before, after, f2, a2)
	listDir(*dir, "after checkpoint")

	// Post-checkpoint commits land in the fresh segment.
	if _, err := recovered.Batch("ledger", func(doc *xmldyn.Document, b *xmldyn.Batch) error {
		b.AppendChild(doc.Root(), "post-checkpoint")
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	final, _ := recovered.LogSize()
	fmt.Printf("post-checkpoint commit appended; log now %d bytes\n", final)
}
