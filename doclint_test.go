package xmldyn

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is a revive-style lint, run as a test
// so CI enforces it without external tools: in the persistence and
// update layers (and the facade), every exported top-level symbol must
// carry a doc comment, and every package must have exactly one package
// doc. The durable-repository work leans on these packages' godoc as
// primary documentation, so drift fails the build.
func TestExportedSymbolsDocumented(t *testing.T) {
	dirs := []string{
		".",
		"internal/repo",
		"internal/replica",
		"internal/update",
		"internal/store",
		"internal/wal",
		"internal/workload",
		"internal/harness",
		"internal/analysis",
		"internal/analysis/analysistest",
		"internal/analysis/locksort",
		"internal/analysis/frozenguard",
		"internal/analysis/lockheld",
		"internal/analysis/walappend",
		"internal/analysis/sentinelerr",
		"cmd/xmldynvet",
	}
	for _, dir := range dirs {
		t.Run(filepath.ToSlash(dir), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				packageDocs := 0
				for _, f := range pkg.Files {
					if f.Doc != nil {
						packageDocs++
					}
					for _, decl := range f.Decls {
						for _, miss := range undocumented(decl) {
							pos := fset.Position(miss.pos)
							t.Errorf("%s:%d: exported %s %s has no doc comment", pos.Filename, pos.Line, miss.kind, miss.name)
						}
					}
				}
				if packageDocs != 1 {
					t.Errorf("package %s has %d package doc comments, want exactly 1", pkg.Name, packageDocs)
				}
			}
		})
	}
}

type missingDoc struct {
	kind string
	name string
	pos  token.Pos
}

// undocumented reports exported top-level symbols in decl lacking docs.
func undocumented(decl ast.Decl) []missingDoc {
	var out []missingDoc
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		if d.Name.IsExported() && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = fmt.Sprintf("method %s.", recvName(d.Recv))
			}
			out = append(out, missingDoc{kind, d.Name.Name, d.Pos()})
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, missingDoc{"type", s.Name.Name, s.Pos()})
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						out = append(out, missingDoc{d.Tok.String(), n.Name, n.Pos()})
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method's receiver type is exported
// (unexported types' methods are not part of the package API).
func exportedRecv(recv *ast.FieldList) bool {
	name := recvName(recv)
	return name != "" && ast.IsExported(name)
}

func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
