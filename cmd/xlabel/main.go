// Command xlabel labels an XML document with a chosen dynamic labelling
// scheme, optionally applies an update script, and prints the labelled
// tree, the encoding table, or query results.
//
// Usage:
//
//	xlabel -scheme qed doc.xml                      # labelled tree
//	xlabel -scheme deweyid -table doc.xml           # encoding table
//	xlabel -scheme ordpath -query //name doc.xml    # location path
//	xlabel -scheme qed -update 'after //b new' doc.xml
//	xlabel -schemes                                 # list schemes
//
// Update script: semicolon-separated commands, each
//
//	before <path> <name> | after <path> <name> | first <path> <name> |
//	append <path> <name> | delete <path> | text <path> <value>
//
// where <path> is a location path selecting the reference node.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xmldyn"
	"xmldyn/internal/figures"
)

func main() {
	scheme := flag.String("scheme", "qed", "labelling scheme")
	table := flag.Bool("table", false, "print the encoding table instead of the tree")
	query := flag.String("query", "", "evaluate a location path and print matches")
	script := flag.String("update", "", "update script to apply before printing")
	xquf := flag.String("xquf", "", "XQuery-Update-style script to apply (see internal/uql)")
	save := flag.String("save", "", "write a binary snapshot to this file after updates")
	load := flag.String("load", "", "read the document from a binary snapshot instead of XML")
	list := flag.Bool("schemes", false, "list available schemes")
	stats := flag.Bool("stats", false, "print labeling statistics")
	flag.Parse()

	if *list {
		for _, s := range xmldyn.Schemes() {
			fmt.Println(s)
		}
		return
	}
	opts := options{
		scheme: *scheme, table: *table, query: *query, script: *script,
		xquf: *xquf, save: *save, load: *load, stats: *stats,
	}
	if err := runWith(opts, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "xlabel:", err)
		os.Exit(1)
	}
}

type options struct {
	scheme, query, script, xquf, save, load string
	table, stats                            bool
}

// run keeps the original narrow signature for tests and simple callers.
func run(scheme string, table bool, query, script string, stats bool, args []string) error {
	return runWith(options{scheme: scheme, table: table, query: query, script: script, stats: stats}, args)
}

func runWith(opts options, args []string) error {
	var s *xmldyn.Session
	var doc *xmldyn.Document
	var err error
	if opts.load != "" {
		data, ferr := os.ReadFile(opts.load)
		if ferr != nil {
			return ferr
		}
		s, err = xmldyn.Restore(data)
		if err != nil {
			return err
		}
		doc = s.Document()
	} else {
		switch {
		case len(args) == 0:
			doc = xmldyn.SampleBook() // the paper's Figure 1(a)
		case args[0] == "-":
			doc, err = xmldyn.Parse(os.Stdin)
		default:
			f, ferr := os.Open(args[0])
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			doc, err = xmldyn.Parse(f)
		}
		if err != nil {
			return err
		}
		s, err = xmldyn.Open(doc, opts.scheme)
		if err != nil {
			return err
		}
	}
	if opts.script != "" {
		if err := applyScript(s, opts.script); err != nil {
			return err
		}
	}
	if opts.xquf != "" {
		if _, err := xmldyn.ApplyUpdates(s, opts.xquf); err != nil {
			return err
		}
	}
	if opts.save != "" {
		data, err := xmldyn.Save(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.save, data, 0o644); err != nil {
			return err
		}
	}
	table, query, stats := opts.table, opts.query, opts.stats
	switch {
	case query != "":
		nodes, err := xmldyn.Query(s, query)
		if err != nil {
			return err
		}
		for _, n := range nodes {
			fmt.Printf("%s  %s\n", s.Labeling().Label(n), n.Name())
		}
	case table:
		if err := xmldyn.Encode(s).WriteTable(os.Stdout); err != nil {
			return err
		}
	default:
		fmt.Print(figures.RenderLabelledTree(doc, s.Labeling(), nil))
	}
	if stats {
		st := s.Labeling().Stats()
		fmt.Printf("\nassigned %d, relabelled %d (events %d, overflow %d), mean label %.1f bits\n",
			st.Assigned, st.Relabeled, st.RelabelEvents, st.OverflowEvents, xmldyn.MeanLabelBits(s))
	}
	return nil
}

func applyScript(s *xmldyn.Session, script string) error {
	for _, cmd := range strings.Split(script, ";") {
		cmd = strings.TrimSpace(cmd)
		if cmd == "" {
			continue
		}
		fields := strings.Fields(cmd)
		if len(fields) < 2 {
			return fmt.Errorf("bad update command %q", cmd)
		}
		op, path := fields[0], fields[1]
		nodes, err := xmldyn.Query(s, path)
		if err != nil {
			return fmt.Errorf("%q: %w", cmd, err)
		}
		if len(nodes) == 0 {
			return fmt.Errorf("%q: no match for %s", cmd, path)
		}
		ref := nodes[0]
		arg := ""
		if len(fields) > 2 {
			arg = strings.Join(fields[2:], " ")
		}
		switch op {
		case "before":
			_, err = s.InsertBefore(ref, arg)
		case "after":
			_, err = s.InsertAfter(ref, arg)
		case "first":
			_, err = s.InsertFirstChild(ref, arg)
		case "append":
			_, err = s.AppendChild(ref, arg)
		case "delete":
			err = s.Delete(ref)
		case "text":
			err = s.SetText(ref, arg)
		default:
			return fmt.Errorf("unknown update op %q", op)
		}
		if err != nil {
			return fmt.Errorf("%q: %w", cmd, err)
		}
	}
	return nil
}
