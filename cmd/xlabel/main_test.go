package main

import (
	"os"
	"path/filepath"
	"testing"

	"xmldyn"
)

func TestRunDefaults(t *testing.T) {
	// No args: labels the paper's sample book.
	if err := run("qed", false, "", "", false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("deweyid", true, "", "", true, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("ordpath", false, "//name", "", false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte("<r><a/><b/></r>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("cdqs", false, "", "", false, []string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run("cdqs", false, "", "", false, []string{filepath.Join(dir, "missing.xml")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if err := run("nope", false, "", "", false, nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSnapshotRoundTripViaFlags(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "doc.xdyn")
	// Apply an XQUF script and save a snapshot.
	err := runWith(options{
		scheme: "cdqs",
		xquf:   `insert node <isbn>9</isbn> after //author`,
		save:   snap,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reload from the snapshot and query the inserted node.
	if err := runWith(options{load: snap, query: "//isbn"}, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt and expect failure.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runWith(options{load: snap}, nil); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
	if err := runWith(options{load: filepath.Join(dir, "missing")}, nil); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestXqufFlagErrors(t *testing.T) {
	if err := runWith(options{scheme: "qed", xquf: "garbage"}, nil); err == nil {
		t.Fatal("bad XQUF script accepted")
	}
}

func TestApplyScript(t *testing.T) {
	doc := xmldyn.SampleBook()
	s, err := xmldyn.Open(doc, "qed")
	if err != nil {
		t.Fatal(err)
	}
	script := "after //author translator; text //translator J. Doe; first /book preface; append /book appendix; delete //edition"
	if err := applyScript(s, script); err != nil {
		t.Fatal(err)
	}
	if doc.FindElement("translator") == nil || doc.FindElement("preface") == nil {
		t.Fatal("script inserts missing")
	}
	if doc.FindElement("edition") != nil {
		t.Fatal("script delete missed")
	}
	if got := doc.FindElement("translator").Text(); got != "J. Doe" {
		t.Fatalf("text: %q", got)
	}
	if err := xmldyn.VerifyOrder(s); err != nil {
		t.Fatal(err)
	}
}

func TestApplyScriptErrors(t *testing.T) {
	doc := xmldyn.SampleBook()
	s, err := xmldyn.Open(doc, "qed")
	if err != nil {
		t.Fatal(err)
	}
	for _, script := range []string{
		"nonsense",             // too few fields
		"frobnicate //title x", // unknown op
		"after //missing x",    // no match
		"after [bad path x",    // parse error
		"before /book x",       // insert before root fails
	} {
		if err := applyScript(s, script); err == nil {
			t.Errorf("script %q accepted", script)
		}
	}
	// The session survives hostile scripts.
	if err := applyScript(s, "append /book ok"); err != nil {
		t.Fatal(err)
	}
}
