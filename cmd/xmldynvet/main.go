// Command xmldynvet is the repository's invariant checker: a
// multichecker over the custom analyzers in internal/analysis that
// proves the concurrency and durability disciplines documented in
// docs/CONCURRENCY.md and docs/DURABILITY.md at compile time (see
// docs/STATIC_ANALYSIS.md for the analyzer-by-analyzer mapping).
//
// Two modes share the same analyzers:
//
//	go build -o xmldynvet ./cmd/xmldynvet
//	go vet -vettool=./xmldynvet ./...   # vet driver: full build graph, tests included
//	go run ./cmd/xmldynvet ./...        # standalone: non-test packages, no vet driver
//	go run ./cmd/xmldynvet -test ./...  # standalone, test variants included
//
// Under -vettool the binary speaks cmd/go's vet protocol (-flags,
// -V=full, then one vet.cfg per package); standalone it loads
// packages itself via `go list -export`. Diagnostics print as
// file:line:col: message (analyzer); the exit status is 2 when any
// diagnostic is reported. Suppress a finding by annotating the line
// (or the line above) with
//
//	//xmldynvet:ignore <analyzer> <justification>
package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"

	"xmldyn/internal/analysis"
	"xmldyn/internal/analysis/frozenguard"
	"xmldyn/internal/analysis/lockheld"
	"xmldyn/internal/analysis/locksort"
	"xmldyn/internal/analysis/sentinelerr"
	"xmldyn/internal/analysis/walappend"
)

// analyzers is the active suite, in the order findings are labelled.
var analyzers = []*analysis.Analyzer{
	locksort.Analyzer,
	frozenguard.Analyzer,
	lockheld.Analyzer,
	walappend.Analyzer,
	sentinelerr.Analyzer,
}

func main() {
	args := os.Args[1:]
	loadTests := false
	var patterns []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// cmd/go fingerprints the tool for its build cache; the
			// contract is "<name> version <non-devel version>".
			fmt.Printf("xmldynvet version %s\n", runtime.Version())
			return
		case arg == "-flags" || arg == "--flags":
			// cmd/go asks which flags the tool accepts (JSON).
			fmt.Println("[]")
			return
		case arg == "-test":
			loadTests = true
		case arg == "-help" || arg == "--help" || arg == "-h":
			usage()
			return
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(runVet(arg))
		case strings.HasPrefix(arg, "-"):
			fmt.Fprintf(os.Stderr, "xmldynvet: unknown flag %s\n", arg)
			os.Exit(2)
		default:
			patterns = append(patterns, arg)
		}
	}
	os.Exit(runStandalone(loadTests, patterns))
}

// usage prints the analyzer roster.
func usage() {
	fmt.Println("xmldynvet [-test] [package patterns]   # standalone")
	fmt.Println("go vet -vettool=$(which xmldynvet) ./...  # vet driver")
	fmt.Println("\nanalyzers:")
	for _, a := range analyzers {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
}

// runVet executes one vet.cfg unit per the go vet vettool protocol.
func runVet(cfg string) int {
	diags, fset, err := analysis.RunVetConfig(cfg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmldynvet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// runStandalone loads patterns via go list and analyzes each package.
func runStandalone(tests bool, patterns []string) int {
	pkgs, err := analysis.LoadPatterns("", tests, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmldynvet: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmldynvet: %s: %v\n", pkg.Types.Path(), err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			exit = 2
		}
	}
	return exit
}
