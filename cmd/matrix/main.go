// Command matrix prints the paper's Figure 7 evaluation matrix: the
// published grades, the measured grades derived from live probes, the
// cell-by-cell diff and the §5.2 analysis.
//
// Usage:
//
//	matrix                 # published + measured + diff
//	matrix -published      # published matrix only
//	matrix -measured       # measured matrix only (runs the probes)
//	matrix -analyze        # §5.2 analysis of the published matrix
//	matrix -reports        # raw probe measurements per scheme
//	matrix -scheme qed     # evaluate a single scheme
package main

import (
	"flag"
	"fmt"
	"os"

	"xmldyn/internal/core"
)

func main() {
	published := flag.Bool("published", false, "print the published Figure 7 only")
	measured := flag.Bool("measured", false, "print the measured matrix only")
	analyze := flag.Bool("analyze", false, "print the §5.2 analysis")
	reports := flag.Bool("reports", false, "print raw probe reports")
	scheme := flag.String("scheme", "", "evaluate a single scheme")
	recommend := flag.String("recommend", "", "advisor profile: version-control, large-documents, query-heavy, general")
	flag.Parse()
	if *recommend != "" {
		if err := runRecommend(*recommend); err != nil {
			fmt.Fprintln(os.Stderr, "matrix:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*published, *measured, *analyze, *reports, *scheme); err != nil {
		fmt.Fprintln(os.Stderr, "matrix:", err)
		os.Exit(1)
	}
}

func runRecommend(profile string) error {
	req, err := core.ProfileRequirements(core.Profile(profile))
	if err != nil {
		return err
	}
	recs := core.Recommend(core.PublishedMatrix(), req)
	if len(recs) == 0 {
		fmt.Println("no scheme in the published matrix satisfies the profile")
		return nil
	}
	fmt.Printf("advisor profile %q (published matrix):\n", profile)
	for i, r := range recs {
		fmt.Printf("  %d. %-16s %d full grades overall; %s\n", i+1, r.Scheme, r.FullCount, r.Why)
	}
	return nil
}

func run(published, measured, analyze, reports bool, scheme string) error {
	cfg := core.DefaultProbeConfig()
	if scheme != "" {
		s, ok := core.SchemeByName(scheme)
		if !ok {
			return fmt.Errorf("unknown scheme %q", scheme)
		}
		a, rep, err := core.Evaluate(s, cfg)
		if err != nil {
			return err
		}
		if err := core.RenderMatrix(os.Stdout, []core.Assessment{a}); err != nil {
			return err
		}
		fmt.Println()
		return core.RenderReport(os.Stdout, rep)
	}
	if analyze {
		return printAnalysis()
	}
	if published {
		fmt.Println("Published matrix (Figure 7):")
		return core.RenderMatrix(os.Stdout, core.PublishedMatrix())
	}
	rows, reps, err := core.EvaluateAll(cfg)
	if err != nil {
		return err
	}
	if measured {
		fmt.Println("Measured matrix:")
		return core.RenderMatrix(os.Stdout, rows)
	}
	fmt.Println("Published matrix (Figure 7):")
	if err := core.RenderMatrix(os.Stdout, core.PublishedMatrix()); err != nil {
		return err
	}
	fmt.Println("\nMeasured matrix (framework probes; extra rows are measured-only schemes):")
	if err := core.RenderMatrix(os.Stdout, rows); err != nil {
		return err
	}
	diffs, cells := core.DiffMatrices(core.PublishedMatrix(), rows)
	fmt.Printf("\nDiff: %d of %d cells diverge (%.1f%% agreement); see EXPERIMENTS.md for explanations\n",
		len(diffs), cells, 100*float64(cells-len(diffs))/float64(cells))
	for _, d := range diffs {
		fmt.Printf("  %-18s %-18s published %-2s measured %-2s\n", d.Scheme, d.Column, d.Published, d.Measured)
	}
	if reports {
		fmt.Println()
		for _, r := range reps {
			if err := core.RenderReport(os.Stdout, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func printAnalysis() error {
	a := core.AnalyzeMatrix(core.PublishedMatrix())
	fmt.Println("§5.2 analysis of the published matrix:")
	fmt.Printf("  most generic scheme: %s (%d Full grades) — the paper: \"the CDQS labelling scheme satisfies the greater number of properties\"\n",
		a.MostGeneric, a.MostGenericFull)
	if len(a.DuplicateSignatures) == 0 {
		fmt.Println("  no two schemes share the same properties")
		return nil
	}
	fmt.Println("  identical rows in the printed figure (the §5.2 uniqueness claim fails for these):")
	for _, d := range a.DuplicateSignatures {
		fmt.Printf("    %s == %s\n", d[0], d[1])
	}
	return nil
}
