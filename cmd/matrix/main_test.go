package main

import "testing"

func TestRunVariants(t *testing.T) {
	if err := run(true, false, false, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(false, false, true, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := printAnalysis(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("probe run in -short mode")
	}
	if err := run(false, false, false, false, "deweyid"); err != nil {
		t.Fatal(err)
	}
	if err := run(false, false, false, false, "nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunRecommend(t *testing.T) {
	for _, p := range []string{"version-control", "large-documents", "query-heavy", "general"} {
		if err := runRecommend(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	if err := runRecommend("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
