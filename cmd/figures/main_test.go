package main

import "testing"

func TestRunAllFigures(t *testing.T) {
	if err := run(0); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 6; n++ {
		if err := run(n); err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
	}
	if err := run(9); err == nil {
		t.Fatal("figure 9 accepted")
	}
}
