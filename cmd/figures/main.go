// Command figures regenerates the paper's Figures 1-6 from the live
// scheme implementations.
//
// Usage:
//
//	figures            # print all six figures
//	figures -fig 4     # print one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"xmldyn/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-6); 0 prints all")
	flag.Parse()
	if err := run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig int) error {
	if fig != 0 {
		out, err := figures.Figure(fig)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	for n := 1; n <= 6; n++ {
		out, err := figures.Figure(n)
		if err != nil {
			return err
		}
		fmt.Println(out)
		fmt.Println()
	}
	return nil
}
