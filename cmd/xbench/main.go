// Command xbench runs the experiment suite behind EXPERIMENTS.md: the
// paper's qualitative claims C1-C8 (DESIGN.md's per-experiment index)
// plus the repository-layer measurements — C9 batched transactions,
// C10 durable-commit fsync policies, C11 recovery time under WAL
// segmentation + auto-checkpoint, C12 multi-document transaction
// cost (MultiBatch vs equivalent per-document batches), C13 MVCC
// snapshot-read throughput vs lock-held reads under writer load, and
// the hypothesis-driven experiments behind docs/EXPERIMENTS.md — C14
// snapshot-pin tail latency under Zipf vs uniform popularity, C15
// incremental-checkpoint cost vs dirty-set skew, and C16 follower
// replication lag vs leader commit rate across fsync policies — as
// measured tables.
//
// Usage:
//
//	xbench              # run every experiment
//	xbench -exp C6      # run one experiment
//	xbench -quick       # smaller workloads
//	xbench -exp C14 -smoke  # tiniest scale, one convergence round (CI)
//	xbench -exp C12 -csv  # machine-readable rows (bench_repo.sh uses this)
//	xbench -exp C13 -cpuprofile cpu.pb.gz   # profile one experiment
//	xbench -exp C13 -memprofile mem.pb.gz   # heap profile at exit
//
// The profiles are standard runtime/pprof output; inspect them with
// `go tool pprof <binary|.> cpu.pb.gz`. docs/OPERATIONS.md §8 walks
// through the workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"xmldyn/internal/core"
	"xmldyn/internal/experiments"
	"xmldyn/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment id (C1-C16); empty runs all")
	quick := flag.Bool("quick", false, "smaller workloads")
	smoke := flag.Bool("smoke", false, "tiniest workloads, single convergence round (CI experiment-smoke)")
	csv := flag.Bool("csv", false, "print tables as CSV (header + rows only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
	}
	err := run(strings.ToUpper(*exp), *quick, *smoke, *csv)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr == nil {
			runtime.GC() // settle the heap so the profile shows live data
			merr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		if merr != nil && err == nil {
			err = merr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
}

func run(exp string, quick, smoke, csv bool) error {
	storms := 60
	qedOps := 10000
	growth := []int{10, 100, 1000, 5000}
	batchOps, batchSize := 2000, 64
	durCommits, durBatch := 200, 16
	recHistories, recBatch := []int{250, 1000, 4000}, 8
	multiTxns, multiBatch := 120, 8
	snapReads, snapGroup := 2000, 8
	latDocs, latOps := 64, 6000
	ckptDocs, ckptCommits, ckptCycles := 64, 100, 8
	ckptSkews := []float64{0, 1.1, 1.5, 2.0}
	repDocs, repCommits, repBatch := 8, 400, 16
	rule := harness.ConvergeRule{MinRounds: 3, MaxRounds: 6, Tolerance: 0.5}
	cfg := core.DefaultProbeConfig()
	if smoke {
		quick = true // smoke implies the quick scale for C1-C13
	}
	if quick {
		storms = 15
		qedOps = 1500
		growth = []int{10, 100, 1000}
		batchOps, batchSize = 400, 32
		durCommits, durBatch = 40, 8
		recHistories = []int{100, 400, 1600}
		multiTxns, multiBatch = 30, 4
		snapReads, snapGroup = 300, 8
		latDocs, latOps = 24, 1200
		ckptDocs, ckptCommits, ckptCycles = 32, 40, 4
		ckptSkews = []float64{0, 1.2, 2.0}
		repDocs, repCommits, repBatch = 4, 120, 8
		rule = harness.ConvergeRule{MinRounds: 2, MaxRounds: 3, Tolerance: 0.75}
		cfg.BaseNodes, cfg.StormOps, cfg.SkewedOps, cfg.ZigzagOps, cfg.XPathNodes = 100, 100, 300, 100, 36
	}
	if smoke {
		// One round at the tiniest scale: CI's experiment-smoke step
		// proves the pipeline runs end to end, not that the numbers
		// converge (a shared runner can't promise stable tails).
		latDocs, latOps = 8, 200
		ckptDocs, ckptCommits, ckptCycles = 8, 12, 2
		ckptSkews = []float64{0, 2.0}
		repDocs, repCommits, repBatch = 2, 24, 4
		rule = harness.ConvergeRule{MinRounds: 1, MaxRounds: 1, Tolerance: 1}
	}
	runners := []struct {
		id string
		fn func() (experiments.Table, error)
	}{
		{"C1", experiments.C1GapExhaustion},
		{"C2", experiments.C2DeweyRelabel},
		{"C3", experiments.C3OrdpathWaste},
		{"C4", func() (experiments.Table, error) { return experiments.C4LSDXCollision(storms) }},
		{"C5", func() (experiments.Table, error) { return experiments.C5QEDNoRelabel(qedOps) }},
		{"C6", func() (experiments.Table, error) { return experiments.C6SkewedGrowth(growth) }},
		{"C7", experiments.C7CDBSCompact},
		{"C8", func() (experiments.Table, error) {
			t, _, err := experiments.C8Matrix(cfg)
			return t, err
		}},
		{"C9", func() (experiments.Table, error) { return experiments.C9BatchedUpdates(batchOps, batchSize) }},
		{"C10", func() (experiments.Table, error) { return experiments.C10CommitLatency(durCommits, durBatch) }},
		{"C11", func() (experiments.Table, error) { return experiments.C11Recovery(recHistories, recBatch) }},
		{"C12", func() (experiments.Table, error) { return experiments.C12MultiDoc(multiTxns, multiBatch) }},
		{"C13", func() (experiments.Table, error) { return experiments.C13SnapshotReads(snapReads, snapGroup) }},
		{"C14", func() (experiments.Table, error) { return experiments.C14TailLatency(latDocs, latOps, rule) }},
		{"C15", func() (experiments.Table, error) {
			return experiments.C15CheckpointSkew(ckptDocs, ckptCommits, ckptCycles, ckptSkews, rule)
		}},
		{"C16", func() (experiments.Table, error) {
			return experiments.C16ReplicationLag(repDocs, repCommits, repBatch, rule)
		}},
	}
	ran := 0
	for _, r := range runners {
		if exp != "" && r.id != exp {
			continue
		}
		t, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (C1-C16)", exp)
	}
	return nil
}
