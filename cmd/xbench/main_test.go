package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"C2", "C3", "C7"} {
		if err := run(exp, true, false); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if err := run("C7", true, true); err != nil {
		t.Fatalf("C7 csv: %v", err)
	}
	if err := run("C99", true, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
