package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"C2", "C3", "C7"} {
		if err := run(exp, true, false, false); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if err := run("C7", true, false, true); err != nil {
		t.Fatalf("C7 csv: %v", err)
	}
	if err := run("C99", true, false, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunSmokeExperiments exercises the hypothesis pipeline the way
// CI's experiment-smoke step does: tiniest scale, one convergence
// round, CSV output.
func TestRunSmokeExperiments(t *testing.T) {
	for _, exp := range []string{"C14", "C15", "C16"} {
		if err := run(exp, false, true, true); err != nil {
			t.Fatalf("%s smoke: %v", exp, err)
		}
	}
}
